//! Type checking for SciL.

use std::collections::HashMap;

use crate::ast::*;
use crate::CompileError;

/// Signature of a built-in function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuiltinSig {
    /// Parameter types; `None` entries accept any array type
    /// (only `free_arr` uses this).
    pub params: Vec<Option<LangType>>,
    /// Return type; `None` for procedures.
    pub ret: Option<LangType>,
}

/// Looks up a built-in function signature by name.
pub fn builtin_signature(name: &str) -> Option<BuiltinSig> {
    use LangType::*;
    let sig = |params: Vec<Option<LangType>>, ret: Option<LangType>| BuiltinSig { params, ret };
    let s = match name {
        "sqrt" | "sin" | "cos" | "exp" | "log" | "fabs" | "floor" => {
            sig(vec![Some(Float)], Some(Float))
        }
        "pow" => sig(vec![Some(Float), Some(Float)], Some(Float)),
        "new_int" => sig(vec![Some(Int)], Some(ArrayInt)),
        "new_float" => sig(vec![Some(Int)], Some(ArrayFloat)),
        "free_arr" => sig(vec![None], None),
        "print_i" | "output_i" => sig(vec![Some(Int)], None),
        "print_f" | "output_f" => sig(vec![Some(Float)], None),
        "mpi_rank" | "mpi_size" => sig(vec![], Some(Int)),
        "allreduce_sum_f" | "allreduce_max_f" => sig(vec![Some(Float)], Some(Float)),
        "allreduce_sum_i" => sig(vec![Some(Int)], Some(Int)),
        "barrier" => sig(vec![], None),
        "allgather_f" => sig(vec![Some(ArrayFloat), Some(Int)], None),
        "allreduce_arr_f" => sig(vec![Some(ArrayFloat), Some(Int)], None),
        "allreduce_arr_i" => sig(vec![Some(ArrayInt), Some(Int)], None),
        "itof" => sig(vec![Some(Int)], Some(Float)),
        "ftoi" => sig(vec![Some(Float)], Some(Int)),
        _ => return None,
    };
    Some(s)
}

/// A type-checked program: the AST plus a type for every expression node.
#[derive(Clone, Debug)]
pub struct CheckedProgram {
    /// The validated AST.
    pub program: Program,
    /// Type of each expression node (`None` for void calls in statement
    /// position), indexed by [`NodeId`].
    pub expr_types: Vec<Option<LangType>>,
}

impl CheckedProgram {
    /// The type of an expression (`None` = void).
    pub fn type_of(&self, id: NodeId) -> Option<LangType> {
        self.expr_types[id.index()]
    }
}

/// Type-checks `program`.
///
/// # Errors
///
/// Returns the first type error with its source position.
pub fn check(program: &Program) -> Result<CheckedProgram, CompileError> {
    let mut sigs: HashMap<String, (Vec<LangType>, Option<LangType>)> = HashMap::new();
    for f in &program.functions {
        if builtin_signature(&f.name).is_some() {
            return Err(CompileError::new(
                f.span.line,
                f.span.col,
                format!("`{}` shadows a built-in function", f.name),
            ));
        }
        let params = f.params.iter().map(|p| p.ty).collect();
        if sigs.insert(f.name.clone(), (params, f.ret)).is_some() {
            return Err(CompileError::new(
                f.span.line,
                f.span.col,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }

    let mut checker = Checker {
        sigs,
        expr_types: vec![None; program.num_nodes],
        scopes: Vec::new(),
        loop_depth: 0,
        current_ret: None,
    };
    for f in &program.functions {
        checker.check_function(f)?;
    }
    Ok(CheckedProgram {
        program: program.clone(),
        expr_types: checker.expr_types,
    })
}

struct Checker {
    sigs: HashMap<String, (Vec<LangType>, Option<LangType>)>,
    expr_types: Vec<Option<LangType>>,
    scopes: Vec<HashMap<String, LangType>>,
    loop_depth: usize,
    current_ret: Option<LangType>,
}

fn err(span: Span, msg: impl Into<String>) -> CompileError {
    CompileError::new(span.line, span.col, msg)
}

impl Checker {
    fn lookup(&self, name: &str) -> Option<LangType> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, span: Span, name: &str, ty: LangType) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("inside a scope");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(err(
                span,
                format!("`{name}` is already defined in this scope"),
            ));
        }
        Ok(())
    }

    fn check_function(&mut self, f: &FnDecl) -> Result<(), CompileError> {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.loop_depth = 0;
        self.current_ret = f.ret;
        for p in &f.params {
            self.declare(f.span, &p.name, p.ty)?;
        }
        self.check_block(&f.body)?;
        if f.ret.is_some() && !Self::always_returns(&f.body) {
            return Err(err(
                f.span,
                format!("function `{}` may finish without returning a value", f.name),
            ));
        }
        Ok(())
    }

    /// Conservative all-paths-return analysis.
    fn always_returns(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Return { .. } => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => Self::always_returns(then_body) && Self::always_returns(else_body),
            _ => false,
        })
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let {
                span,
                name,
                ty,
                init,
            } => {
                let it = self.expect_value(init)?;
                if it != *ty {
                    return Err(err(
                        *span,
                        format!("`{name}: {ty}` initialized with `{it}`"),
                    ));
                }
                self.declare(*span, name, *ty)
            }
            Stmt::Assign { span, name, value } => {
                let vt = self.expect_value(value)?;
                let ty = self
                    .lookup(name)
                    .ok_or_else(|| err(*span, format!("unknown variable `{name}`")))?;
                if vt != ty {
                    return Err(err(*span, format!("assigning `{vt}` to `{name}: {ty}`")));
                }
                Ok(())
            }
            Stmt::Store {
                span,
                array,
                index,
                value,
            } => {
                let at = self
                    .lookup(array)
                    .ok_or_else(|| err(*span, format!("unknown variable `{array}`")))?;
                let elem = at
                    .element()
                    .ok_or_else(|| err(*span, format!("`{array}: {at}` is not an array")))?;
                let it = self.expect_value(index)?;
                if it != LangType::Int {
                    return Err(err(
                        *span,
                        format!("array index has type `{it}`, not `int`"),
                    ));
                }
                let vt = self.expect_value(value)?;
                if vt != elem {
                    return Err(err(*span, format!("storing `{vt}` into `[{elem}]`")));
                }
                Ok(())
            }
            Stmt::If {
                span,
                cond,
                then_body,
                else_body,
            } => {
                self.expect_type(cond, LangType::Bool, *span)?;
                self.check_block(then_body)?;
                self.check_block(else_body)
            }
            Stmt::While { span, cond, body } => {
                self.expect_type(cond, LangType::Bool, *span)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For {
                span,
                init,
                cond,
                step,
                body,
            } => {
                // The init's declaration scopes over cond/step/body.
                self.scopes.push(HashMap::new());
                self.check_stmt(init)?;
                self.expect_type(cond, LangType::Bool, *span)?;
                self.check_stmt(step)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return { span, value } => match (value, self.current_ret) {
                (None, None) => Ok(()),
                (Some(v), Some(want)) => {
                    let vt = self.expect_value(v)?;
                    if vt != want {
                        return Err(err(*span, format!("returning `{vt}`, expected `{want}`")));
                    }
                    Ok(())
                }
                (Some(_), None) => Err(err(*span, "returning a value from a procedure")),
                (None, Some(want)) => {
                    Err(err(*span, format!("missing return value of type `{want}`")))
                }
            },
            Stmt::Break { span } | Stmt::Continue { span } => {
                if self.loop_depth == 0 {
                    Err(err(*span, "`break`/`continue` outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Expr { expr, .. } => {
                // Void calls are allowed here; any other value is
                // computed and discarded (useful in tests).
                self.check_expr(expr)?;
                Ok(())
            }
        }
    }

    fn expect_value(&mut self, e: &Expr) -> Result<LangType, CompileError> {
        match self.check_expr(e)? {
            Some(t) => Ok(t),
            None => Err(err(e.span, "void expression used as a value")),
        }
    }

    fn expect_type(&mut self, e: &Expr, want: LangType, span: Span) -> Result<(), CompileError> {
        let t = self.expect_value(e)?;
        if t != want {
            return Err(err(span, format!("expected `{want}`, found `{t}`")));
        }
        Ok(())
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Option<LangType>, CompileError> {
        let ty: Option<LangType> = match &e.kind {
            ExprKind::Int(_) => Some(LangType::Int),
            ExprKind::Float(_) => Some(LangType::Float),
            ExprKind::Bool(_) => Some(LangType::Bool),
            ExprKind::Var(name) => Some(
                self.lookup(name)
                    .ok_or_else(|| err(e.span, format!("unknown variable `{name}`")))?,
            ),
            ExprKind::Unary(op, inner) => {
                let it = self.expect_value(inner)?;
                match op {
                    UnaryOp::Neg => {
                        if it != LangType::Int && it != LangType::Float {
                            return Err(err(e.span, format!("cannot negate `{it}`")));
                        }
                        Some(it)
                    }
                    UnaryOp::Not => {
                        if it != LangType::Bool {
                            return Err(err(e.span, format!("cannot apply `!` to `{it}`")));
                        }
                        Some(LangType::Bool)
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.expect_value(lhs)?;
                let rt = self.expect_value(rhs)?;
                if lt != rt {
                    return Err(err(
                        e.span,
                        format!("operands have different types: `{lt}` vs `{rt}`"),
                    ));
                }
                if op.is_arith() {
                    if lt != LangType::Int && lt != LangType::Float {
                        return Err(err(e.span, format!("arithmetic on `{lt}`")));
                    }
                    Some(lt)
                } else if op.is_cmp() {
                    let ordering = matches!(
                        op,
                        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
                    );
                    if ordering && lt != LangType::Int && lt != LangType::Float {
                        return Err(err(e.span, format!("ordering comparison on `{lt}`")));
                    }
                    if !ordering && lt.is_array() {
                        return Err(err(e.span, "arrays cannot be compared"));
                    }
                    Some(LangType::Bool)
                } else {
                    // && / ||
                    if lt != LangType::Bool {
                        return Err(err(e.span, format!("logical operator on `{lt}`")));
                    }
                    Some(LangType::Bool)
                }
            }
            ExprKind::Index(base, index) => {
                let bt = self.expect_value(base)?;
                let elem = bt
                    .element()
                    .ok_or_else(|| err(e.span, format!("cannot index `{bt}`")))?;
                self.expect_type(index, LangType::Int, index.span)?;
                Some(elem)
            }
            ExprKind::Call(name, args) => {
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    arg_types.push(self.expect_value(a)?);
                }
                if let Some(sig) = builtin_signature(name) {
                    if sig.params.len() != arg_types.len() {
                        return Err(err(
                            e.span,
                            format!(
                                "`{name}` takes {} arguments, {} supplied",
                                sig.params.len(),
                                arg_types.len()
                            ),
                        ));
                    }
                    for (i, (want, got)) in sig.params.iter().zip(&arg_types).enumerate() {
                        match want {
                            Some(w) if w != got => {
                                return Err(err(
                                    e.span,
                                    format!("`{name}` argument {i}: expected `{w}`, found `{got}`"),
                                ))
                            }
                            None if !got.is_array() => {
                                return Err(err(
                                    e.span,
                                    format!(
                                        "`{name}` argument {i}: expected an array, found `{got}`"
                                    ),
                                ))
                            }
                            _ => {}
                        }
                    }
                    sig.ret
                } else if let Some((params, ret)) = self.sigs.get(name).cloned() {
                    if params.len() != arg_types.len() {
                        return Err(err(
                            e.span,
                            format!(
                                "`{name}` takes {} arguments, {} supplied",
                                params.len(),
                                arg_types.len()
                            ),
                        ));
                    }
                    for (i, (want, got)) in params.iter().zip(&arg_types).enumerate() {
                        if want != got {
                            return Err(err(
                                e.span,
                                format!("`{name}` argument {i}: expected `{want}`, found `{got}`"),
                            ));
                        }
                    }
                    ret
                } else {
                    return Err(err(e.span, format!("unknown function `{name}`")));
                }
            }
        };
        self.expr_types[e.id.index()] = ty;
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check_src(src: &str) -> Result<CheckedProgram, CompileError> {
        check(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            r#"
fn norm(a: [float], n: int) -> float {
    let s: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}
fn main() -> int {
    let a: [float] = new_float(4);
    a[0] = 1.0;
    output_f(norm(a, 4));
    free_arr(a);
    return 0;
}
"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_type_mismatch_in_let() {
        let e = check_src("fn f() { let x: int = 1.5; }").unwrap_err();
        assert!(e.message().contains("initialized with"));
    }

    #[test]
    fn rejects_mixed_arithmetic() {
        let e = check_src("fn f() -> float { return 1 + 2.0; }").unwrap_err();
        assert!(e.message().contains("different types"));
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = check_src("fn f() -> int { return y; }").unwrap_err();
        assert!(e.message().contains("unknown variable"));
    }

    #[test]
    fn rejects_non_bool_condition() {
        let e = check_src("fn f() { if (1) { } }").unwrap_err();
        assert!(e.message().contains("expected `bool`"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("fn f() { break; }").unwrap_err();
        assert!(e.message().contains("outside of a loop"));
    }

    #[test]
    fn rejects_missing_return() {
        let e = check_src("fn f(c: bool) -> int { if (c) { return 1; } }").unwrap_err();
        assert!(e.message().contains("without returning"));
    }

    #[test]
    fn accepts_return_in_both_branches() {
        check_src("fn f(c: bool) -> int { if (c) { return 1; } else { return 2; } }").unwrap();
    }

    #[test]
    fn rejects_void_in_value_position() {
        let e = check_src("fn f() -> int { return barrier(); }").unwrap_err();
        assert!(e.message().contains("void expression"));
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let e = check_src("fn f() -> float { return pow(2.0); }").unwrap_err();
        assert!(e.message().contains("takes 2 arguments"));
    }

    #[test]
    fn rejects_shadowing_builtin() {
        let e = check_src("fn sqrt(x: float) -> float { return x; }").unwrap_err();
        assert!(e.message().contains("shadows a built-in"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let e = check_src("fn f() {} fn f() {}").unwrap_err();
        assert!(e.message().contains("duplicate function"));
    }

    #[test]
    fn rejects_indexing_scalar() {
        let e = check_src("fn f(x: int) -> int { return x[0]; }").unwrap_err();
        assert!(e.message().contains("cannot index"));
    }

    #[test]
    fn free_arr_accepts_both_array_types() {
        check_src("fn f() { free_arr(new_int(1)); free_arr(new_float(1)); }").unwrap();
        let e = check_src("fn f() { free_arr(3); }").unwrap_err();
        assert!(e.message().contains("expected an array"));
    }

    #[test]
    fn rejects_redeclaration_in_same_scope() {
        let e = check_src("fn f() { let x: int = 1; let x: int = 2; }").unwrap_err();
        assert!(e.message().contains("already defined"));
    }

    #[test]
    fn allows_shadowing_in_inner_scope() {
        check_src("fn f() { let x: int = 1; if (true) { let x: float = 2.0; output_f(x); } output_i(x); }")
            .unwrap();
    }

    #[test]
    fn records_expression_types() {
        let cp = check_src("fn f() -> float { return 1.5 + 2.5; }").unwrap();
        let has_float = cp
            .expr_types
            .iter()
            .flatten()
            .any(|t| *t == LangType::Float);
        assert!(has_float);
    }

    #[test]
    fn user_function_arg_mismatch() {
        let e = check_src("fn g(x: int) -> int { return x; } fn f() -> int { return g(1.0); }")
            .unwrap_err();
        assert!(e.message().contains("expected `int`"));
    }
}

//! Property-based tests for the interpreter's bit-level and memory
//! invariants.

use proptest::prelude::*;

use ipas_interp::{Machine, Memory, RtVal, RunConfig, RunStatus, Trap};
use ipas_ir::Type;

proptest! {
    /// Register images round-trip for every type.
    #[test]
    fn rtval_bits_round_trip(bits in any::<u64>()) {
        for ty in [Type::I64, Type::F64, Type::Ptr] {
            let v = RtVal::from_bits(ty, bits);
            // NaN payloads must survive bit-exactly too.
            prop_assert_eq!(v.bits(), bits);
        }
        let b = RtVal::from_bits(Type::Bool, bits);
        prop_assert_eq!(b.bits(), bits & 1);
    }

    /// Flipping the same bit twice is the identity.
    #[test]
    fn double_flip_is_identity(bits in any::<u64>(), bit in 0u32..64) {
        for ty in [Type::I64, Type::F64, Type::Ptr] {
            let v = RtVal::from_bits(ty, bits);
            prop_assert_eq!(v.flip_bit(bit).flip_bit(bit).bits(), v.bits());
        }
    }

    /// A single flip changes exactly one bit of the register image.
    #[test]
    fn flip_changes_one_bit(bits in any::<u64>(), bit in 0u32..64) {
        let v = RtVal::from_bits(Type::I64, bits);
        let delta = v.bits() ^ v.flip_bit(bit).bits();
        prop_assert_eq!(delta.count_ones(), 1);
        prop_assert_eq!(delta, 1u64 << bit);
    }

    /// The memory model never panics: any address either reads back a
    /// stored value or traps.
    #[test]
    fn memory_ops_never_panic(
        sizes in proptest::collection::vec(1i64..256, 1..8),
        probes in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut mem = Memory::new();
        let mut bases = Vec::new();
        for s in &sizes {
            bases.push(mem.alloc(*s).unwrap());
        }
        // Writes to valid cells succeed.
        for (base, s) in bases.iter().zip(&sizes) {
            let cells = (*s as u64).div_ceil(8);
            for c in 0..cells {
                mem.store(base + c * 8, c).unwrap();
                prop_assert_eq!(mem.load(base + c * 8).unwrap(), c);
            }
        }
        // Arbitrary probes are total (Ok or a trap, never a panic).
        for p in probes {
            let _ = mem.load(p);
            let _ = mem.store(p, 1);
        }
    }

    /// An injection at any eligible site of a simple program yields one
    /// of the defined statuses and never panics the interpreter.
    #[test]
    fn injection_is_total(target in 0u64..2000, bit in 0u32..64) {
        let module = ipas_lang::compile(
            r#"
fn main() -> int {
    let a: [int] = new_int(16);
    let s: int = 0;
    for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 7 % 5; }
    for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i] / (i + 1); }
    output_i(s);
    free_arr(a);
    return 0;
}
"#,
        ).unwrap();
        let mut m = Machine::new(&module);
        let clean = m.run(&RunConfig::default()).unwrap();
        let out = m.run(&RunConfig {
            injection: Some(ipas_interp::Injection::at_global_index(
                target % clean.eligible_results,
                bit,
            )),
            max_insts: RunConfig::budget_from_nominal(clean.dynamic_insts),
            ..RunConfig::default()
        }).unwrap();
        match out.status {
            RunStatus::Completed(_)
            | RunStatus::Hang
            | RunStatus::Detected
            | RunStatus::Trapped(_) => {}
        }
        prop_assert!(out.injected_site.is_some());
    }

    /// Freed regions always trap and never alias later allocations.
    #[test]
    fn freed_regions_stay_dead(count in 1usize..12) {
        let mut mem = Memory::new();
        let mut freed = Vec::new();
        for i in 0..count {
            let b = mem.alloc(8 + i as i64 * 8).unwrap();
            mem.free(b).unwrap();
            freed.push(b);
        }
        // New allocations get fresh region numbers.
        let fresh = mem.alloc(64).unwrap();
        for b in freed {
            prop_assert_eq!(mem.load(b), Err(Trap::UseAfterFree));
            prop_assert_ne!(b, fresh);
        }
    }
}

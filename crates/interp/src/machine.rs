//! The interpreter core.

use std::fmt;
use std::time::{Duration, Instant};

use ipas_ir::inst::Callee;
use ipas_ir::{BinOp, CastOp, FuncId, Function, Inst, InstId, Intrinsic, Module, Type, Value};

use crate::env::{Env, SerialEnv};
use crate::memory::{gep_addr, Memory};
use crate::rtval::RtVal;
use crate::trap::Trap;

/// Maximum call depth before a [`Trap::StackOverflow`].
pub(crate) const MAX_CALL_DEPTH: usize = 256;
/// How often (in dynamic instructions) the poison flag is polled.
pub(crate) const POISON_POLL_INTERVAL: u64 = 4096;

/// Returns `true` if `inst` is an eligible fault-injection site under the
/// paper's fault model (Section 3): instructions whose *register result*
/// can be corrupted — ALU ops, comparisons, casts, selects, pointer
/// arithmetic, and values returned from calls. Loads/stores are
/// ECC-protected, control flow is covered by control-flow checking, and
/// phi/alloca do not map to value-producing hardware instructions.
pub fn is_fault_site(inst: &Inst) -> bool {
    match inst {
        Inst::Binary { .. }
        | Inst::Icmp { .. }
        | Inst::Fcmp { .. }
        | Inst::Cast { .. }
        | Inst::Select { .. }
        | Inst::Gep { .. } => true,
        Inst::Call { ret_ty, .. } => *ret_ty != Type::Void,
        Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::Alloca { .. }
        | Inst::Phi { .. }
        | Inst::Br { .. }
        | Inst::CondBr { .. }
        | Inst::Ret { .. } => false,
    }
}

/// The dynamic site class a fault model samples from.
///
/// The paper's model (and [`FaultModel::SingleBit`]) corrupts *register
/// results* of value-producing instructions. The extended models add
/// three further classes with their own dynamic counters, so every
/// model enumerates a deterministic, engine-independent sample space.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Results of eligible value-producing instructions
    /// (see [`is_fault_site`]).
    Value,
    /// Executions of `load` instructions.
    Load,
    /// Executions of `store` instructions.
    Store,
    /// Executions of conditional branches (including branches fused
    /// into compare-and-branch instructions by the pre-decoded engine).
    Branch,
}

impl SiteClass {
    /// Human-readable class name for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SiteClass::Value => "eligible value results",
            SiteClass::Load => "load executions",
            SiteClass::Store => "store executions",
            SiteClass::Branch => "conditional-branch executions",
        }
    }
}

/// What kind of hardware fault an injection plan models.
///
/// `SingleBit` is the paper's model and the default; the other variants
/// extend campaigns to the faults the paper scopes out (multi-bit
/// upsets, ECC gaps on the memory path, control-flow errors). Each
/// model samples its own [`SiteClass`] and applies its own corruption,
/// but all of them are deterministic and bit-identical across the
/// reference and pre-decoded engines.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// Flip one bit of a computed register result (paper §3).
    #[default]
    SingleBit,
    /// Flip `width` adjacent bits (modulo the result width) of a
    /// computed register result — a multi-bit upset.
    MultiBitBurst {
        /// Number of adjacent bit lines upset together (≥ 1).
        width: u32,
    },
    /// Force one bit of a computed register result to a fixed polarity
    /// (a stuck-at line). The plan's `bit` encodes line and polarity;
    /// when the bit already holds the stuck value the fault is a no-op
    /// and trivially masked, as on real hardware.
    StuckValue,
    /// Flip one bit of the raw 64-bit image returned by a `load`,
    /// before type masking — an ECC gap on the read path.
    LoadValue,
    /// Flip one bit of the raw 64-bit image written by a `store` — an
    /// ECC gap on the write path.
    StoreValue,
    /// Invert one dynamic conditional-branch decision, steering
    /// execution down the wrong edge (including its phi moves).
    BranchFlip,
}

impl FaultModel {
    /// Canonical representative of every model, for sweeps and fuzzing.
    pub const ALL: [FaultModel; 6] = [
        FaultModel::SingleBit,
        FaultModel::MultiBitBurst { width: 2 },
        FaultModel::StuckValue,
        FaultModel::LoadValue,
        FaultModel::StoreValue,
        FaultModel::BranchFlip,
    ];

    /// The dynamic site class this model's `target` indexes.
    pub fn site_class(self) -> SiteClass {
        match self {
            FaultModel::SingleBit | FaultModel::MultiBitBurst { .. } | FaultModel::StuckValue => {
                SiteClass::Value
            }
            FaultModel::LoadValue => SiteClass::Load,
            FaultModel::StoreValue => SiteClass::Store,
            FaultModel::BranchFlip => SiteClass::Branch,
        }
    }

    /// `true` when the model corrupts register results (the class the
    /// paper's sampling and static-site campaigns enumerate).
    pub fn injects_values(self) -> bool {
        self.site_class() == SiteClass::Value
    }

    /// Exclusive upper bound for drawing the plan's `bit` field.
    /// `StuckValue` draws from 128: the low 6 bits select the line, bit
    /// 6 the polarity. `BranchFlip` carries no bit at all.
    pub fn bit_domain(self) -> u32 {
        match self {
            FaultModel::StuckValue => 128,
            FaultModel::BranchFlip => 1,
            _ => 64,
        }
    }

    /// Applies this model's corruption to a `width`-bit register image.
    /// This is the single implementation both engines route through, so
    /// the corrupted image is engine-independent by construction. For
    /// `SingleBit` it is exactly the legacy `bits ^ (1 << (bit % width))`.
    pub fn corrupt_bits(self, bit: u32, width: u32, bits: u64) -> u64 {
        match self {
            FaultModel::SingleBit | FaultModel::LoadValue | FaultModel::StoreValue => {
                bits ^ (1u64 << (bit % width))
            }
            FaultModel::MultiBitBurst { width: burst } => {
                // OR-accumulating the mask flips each line at most once,
                // so a burst wider than the value (e.g. any burst on a
                // bool) degrades to flipping every line once.
                let mut mask = 0u64;
                for k in 0..burst.max(1) {
                    mask |= 1u64 << ((bit + k) % width);
                }
                bits ^ mask
            }
            FaultModel::StuckValue => {
                let line = (bit & 63) % width;
                if bit & 64 != 0 {
                    bits | (1u64 << line)
                } else {
                    bits & !(1u64 << line)
                }
            }
            FaultModel::BranchFlip => bits ^ 1,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::SingleBit => write!(f, "single-bit"),
            FaultModel::MultiBitBurst { width } => write!(f, "burst{width}"),
            FaultModel::StuckValue => write!(f, "stuck-value"),
            FaultModel::LoadValue => write!(f, "load-value"),
            FaultModel::StoreValue => write!(f, "store-value"),
            FaultModel::BranchFlip => write!(f, "branch-flip"),
        }
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "single-bit" => return Ok(FaultModel::SingleBit),
            "stuck-value" => return Ok(FaultModel::StuckValue),
            "load-value" => return Ok(FaultModel::LoadValue),
            "store-value" => return Ok(FaultModel::StoreValue),
            "branch-flip" => return Ok(FaultModel::BranchFlip),
            _ => {}
        }
        if let Some(w) = s.strip_prefix("burst") {
            let width: u32 = w
                .parse()
                .map_err(|_| format!("invalid burst width `{w}` in fault model `{s}`"))?;
            if !(1..=64).contains(&width) {
                return Err(format!("burst width {width} out of range 1..=64"));
            }
            return Ok(FaultModel::MultiBitBurst { width });
        }
        Err(format!(
            "unknown fault model `{s}` (expected single-bit, burst<W>, stuck-value, \
             load-value, store-value, or branch-flip)"
        ))
    }
}

/// A single planned fault: corrupt the `target`-th dynamic event of the
/// plan's [`FaultModel`] site class (0-based), using `bit` as the
/// model's corruption parameter.
///
/// For value-class models with `site` unset, `target` indexes the run's
/// *global* sequence of eligible results (dynamic-instance-uniform
/// sampling). With `site` set, `target` counts only executions of that
/// static instruction (used by static-site-uniform sampling campaigns;
/// value-class models only). Load/store/branch models index their own
/// dynamic counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Injection {
    /// 0-based index into the targeted sequence of dynamic events.
    pub target: u64,
    /// The model's corruption parameter (bit line, burst origin,
    /// stuck line+polarity); unused by [`FaultModel::BranchFlip`].
    pub bit: u32,
    /// Restrict counting to one static instruction.
    pub site: Option<(FuncId, InstId)>,
    /// The fault being modeled.
    pub model: FaultModel,
}

impl Injection {
    /// A global-index single-bit injection (the default FlipIt-style
    /// plan).
    pub fn at_global_index(target: u64, bit: u32) -> Self {
        Injection {
            target,
            bit,
            site: None,
            model: FaultModel::SingleBit,
        }
    }

    /// A single-bit injection into the `instance`-th execution of one
    /// static instruction.
    pub fn at_site(site: (FuncId, InstId), instance: u64, bit: u32) -> Self {
        Injection {
            target: instance,
            bit,
            site: Some(site),
            model: FaultModel::SingleBit,
        }
    }

    /// A global-index injection under an arbitrary fault model.
    pub fn for_model(model: FaultModel, target: u64, bit: u32) -> Self {
        Injection {
            target,
            bit,
            site: None,
            model,
        }
    }
}

/// Configuration of one interpreter run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Entry function name.
    pub entry: String,
    /// Arguments passed to the entry function.
    pub args: Vec<RtVal>,
    /// Dynamic instruction budget; exceeding it reports
    /// [`RunStatus::Hang`]. Use [`RunConfig::budget_from_nominal`] to
    /// derive it from a clean run.
    pub max_insts: u64,
    /// Optional wall-clock deadline for the run. Exceeding it reports
    /// [`RunStatus::Hang`], like the instruction budget: it is the
    /// campaign runtime's watchdog against runs that burn real time
    /// without retiring instructions fast enough for `max_insts` to
    /// catch them. Checked at the poison-poll cadence (every 4096
    /// dynamic instructions), so very short limits are quantized to
    /// that granularity.
    pub wall_limit: Option<Duration>,
    /// Optional fault injection plan.
    pub injection: Option<Injection>,
    /// Record per-site eligible-execution counts (needed by
    /// static-site-uniform sampling; off by default — it costs a hash
    /// update per eligible result).
    pub profile_sites: bool,
    /// Record the eligible-result sequence as a run-length-encoded site
    /// trace (`(func, inst, count)` runs, in execution order). This is
    /// the map from a global eligible index to the static site that
    /// produces it — section-granular campaigns use it to assign each
    /// plan to the section its target executes in. Off by default: the
    /// trace forces the compiled engine onto its slow injection path,
    /// so it is collected once per campaign, never per plan.
    pub trace_eligible: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            entry: "main".to_string(),
            args: Vec::new(),
            max_insts: u64::MAX,
            injection: None,
            profile_sites: false,
            trace_eligible: false,
            wall_limit: None,
        }
    }
}

impl RunConfig {
    /// Derives a hang budget from a clean run's dynamic instruction
    /// count: `10 × nominal + 100_000`, the reproduction's equivalent of
    /// the paper's "substantially longer execution time" criterion.
    pub fn budget_from_nominal(nominal: u64) -> u64 {
        nominal.saturating_mul(10).saturating_add(100_000)
    }
}

/// How a run ended.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// The entry function returned normally.
    Completed(Option<RtVal>),
    /// A trap fired (observable symptom).
    Trapped(Trap),
    /// An `__ipas_check_*` comparison failed (fault detected by
    /// duplication).
    Detected,
    /// The instruction budget was exhausted (hang symptom).
    Hang,
}

impl RunStatus {
    /// Returns `true` when the run finished without symptom or detection.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed(_))
    }

    /// Returns `true` for trap or hang (an observable symptom).
    pub fn is_symptom(&self) -> bool {
        matches!(self, RunStatus::Trapped(_) | RunStatus::Hang)
    }
}

/// The verified output stream produced by `output_i64`/`output_f64`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutputStream {
    items: Vec<OutItem>,
}

#[derive(Copy, Clone, Debug, PartialEq)]
enum OutItem {
    I(i64),
    F(f64),
}

impl OutputStream {
    /// Number of emitted items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All integer items, in emission order (floats are skipped).
    pub fn as_ints(&self) -> Vec<i64> {
        self.items
            .iter()
            .filter_map(|i| match i {
                OutItem::I(v) => Some(*v),
                OutItem::F(_) => None,
            })
            .collect()
    }

    /// All float items, in emission order (integers are skipped).
    pub fn as_floats(&self) -> Vec<f64> {
        self.items
            .iter()
            .filter_map(|i| match i {
                OutItem::F(v) => Some(*v),
                OutItem::I(_) => None,
            })
            .collect()
    }

    fn push_i(&mut self, v: i64) {
        self.items.push(OutItem::I(v));
    }

    fn push_f(&mut self, v: f64) {
        self.items.push(OutItem::F(v));
    }
}

/// Everything observed during one run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Final status.
    pub status: RunStatus,
    /// Total dynamic instructions executed.
    pub dynamic_insts: u64,
    /// Eligible (injectable) results produced — the sample space for
    /// statistical fault injection under value-class fault models.
    pub eligible_results: u64,
    /// Dynamic `load` executions — the [`FaultModel::LoadValue`] space.
    pub loads: u64,
    /// Dynamic `store` executions — the [`FaultModel::StoreValue`]
    /// space.
    pub stores: u64,
    /// Dynamic conditional-branch decisions — the
    /// [`FaultModel::BranchFlip`] space.
    pub cond_branches: u64,
    /// The verified output stream.
    pub outputs: OutputStream,
    /// Lines printed via `print_*` intrinsics.
    pub console: Vec<String>,
    /// The static instruction whose result was corrupted, when an
    /// injection fired.
    pub injected_site: Option<(FuncId, InstId)>,
    /// Per-site eligible-execution counts (present when
    /// [`RunConfig::profile_sites`] was set). Map iteration order is
    /// unspecified: anything that serializes, fingerprints, or records
    /// this profile must sort by site first (as
    /// `ipas_faultsim::profile_sites` does).
    pub site_profile: Option<std::collections::HashMap<(FuncId, InstId), u64>>,
    /// The eligible-result sequence as `(func, inst, count)` runs, in
    /// execution order (present when [`RunConfig::trace_eligible`] was
    /// set). The counts sum to [`RunOutput::eligible_results`];
    /// prefix-summing them maps any global eligible index back to its
    /// static site.
    pub eligible_trace: Option<Vec<(FuncId, InstId, u64)>>,
    /// Dynamic instruction count at the moment of injection. Combined
    /// with [`RunOutput::dynamic_insts`] this gives the *detection
    /// latency* (how far the error propagated before being caught) —
    /// the quantity behind the paper's §2.2 argument that duplication
    /// detects errors close to their occurrence.
    pub injected_at_inst: Option<u64>,
}

/// Error for misconfigured runs (not runtime faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError(String);

impl RunError {
    /// The error description.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run error: {}", self.0)
    }
}

impl std::error::Error for RunError {}

/// Why execution stopped before the entry function returned. Shared by
/// the reference and compiled engines.
pub(crate) enum Stop {
    Trap(Trap),
    Detected,
    Budget,
}

/// Mutable per-run state shared by both engines: memory, streams, the
/// dynamic/eligible counters, and the injection plan. Keeping one
/// definition here guarantees the two engines count and inject through
/// the exact same code paths.
pub(crate) struct RunState<'e> {
    pub(crate) memory: Memory,
    pub(crate) outputs: OutputStream,
    pub(crate) console: Vec<String>,
    pub(crate) dynamic_insts: u64,
    pub(crate) eligible_results: u64,
    /// Dynamic `load` executions (the [`SiteClass::Load`] sample space).
    pub(crate) loads: u64,
    /// Dynamic `store` executions (the [`SiteClass::Store`] space).
    pub(crate) stores: u64,
    /// Dynamic conditional-branch decisions (the [`SiteClass::Branch`]
    /// space). Fused compare-and-branch instructions count once, same
    /// as the reference `condbr` they decode from.
    pub(crate) cond_branches: u64,
    pub(crate) max_insts: u64,
    pub(crate) deadline: Option<Instant>,
    pub(crate) injection: Option<Injection>,
    pub(crate) injected_site: Option<(FuncId, InstId)>,
    pub(crate) injected_at_inst: Option<u64>,
    pub(crate) site_instance: u64,
    pub(crate) profile_sites: bool,
    pub(crate) site_profile: std::collections::HashMap<(FuncId, InstId), u64>,
    pub(crate) trace_eligible: bool,
    /// RLE eligible-site trace (see [`RunOutput::eligible_trace`]).
    pub(crate) eligible_trace: Vec<(FuncId, InstId, u64)>,
    pub(crate) env: &'e mut dyn Env,
    /// Next `dynamic_insts` value at which [`HotCounters::tick`] must
    /// run its slow path (budget exhaustion or poison/deadline poll) —
    /// always `min(max_insts + 1, next poll multiple)`. Maintained only
    /// by the compiled engine; the reference re-derives both conditions
    /// every tick.
    pub(crate) next_stop: u64,
    /// Global eligible-result index the compiled engine's injection
    /// fast path compares against (`u64::MAX` when no global-index
    /// value-class injection is armed).
    pub(crate) fast_target: u64,
    /// Load-execution index at which a [`FaultModel::LoadValue`] plan
    /// fires (`u64::MAX` when none is armed).
    pub(crate) load_target: u64,
    /// Store-execution index for [`FaultModel::StoreValue`] plans.
    pub(crate) store_target: u64,
    /// Branch-decision index for [`FaultModel::BranchFlip`] plans.
    pub(crate) branch_target: u64,
    /// True when injection bookkeeping needs the full path: site
    /// profiling or a site-restricted plan.
    pub(crate) slow_inject: bool,
}

/// The armed target for one site class, or `u64::MAX` when the plan
/// does not sample that class. Site-restricted plans are value-class
/// only, so class targets ignore them.
fn class_target(injection: Option<Injection>, class: SiteClass) -> u64 {
    match injection {
        Some(Injection {
            site: None,
            target,
            model,
            ..
        }) if model.site_class() == class => target,
        _ => u64::MAX,
    }
}

impl<'e> RunState<'e> {
    /// Builds the starting state for one run, taking ownership of a
    /// (possibly recycled) memory so engines can pool allocations.
    pub(crate) fn start(memory: Memory, config: &RunConfig, env: &'e mut dyn Env) -> Self {
        RunState {
            memory,
            outputs: OutputStream::default(),
            console: Vec::new(),
            dynamic_insts: 0,
            eligible_results: 0,
            loads: 0,
            stores: 0,
            cond_branches: 0,
            max_insts: config.max_insts,
            deadline: config.wall_limit.map(|limit| Instant::now() + limit),
            injection: config.injection,
            injected_site: None,
            injected_at_inst: None,
            site_instance: 0,
            profile_sites: config.profile_sites,
            site_profile: std::collections::HashMap::new(),
            trace_eligible: config.trace_eligible,
            eligible_trace: Vec::new(),
            env,
            next_stop: POISON_POLL_INTERVAL.min(config.max_insts.saturating_add(1)),
            fast_target: class_target(config.injection, SiteClass::Value),
            load_target: class_target(config.injection, SiteClass::Load),
            store_target: class_target(config.injection, SiteClass::Store),
            branch_target: class_target(config.injection, SiteClass::Branch),
            slow_inject: config.profile_sites
                || config.trace_eligible
                || matches!(config.injection, Some(Injection { site: Some(_), .. })),
        }
    }

    /// Folds a finished frame execution into the run's status, poisoning
    /// the environment on abnormal exits so other ranks observe it.
    pub(crate) fn finish(&mut self, result: Result<Option<RtVal>, Stop>) -> RunStatus {
        match result {
            Ok(v) => RunStatus::Completed(v),
            Err(Stop::Trap(t)) => {
                self.env.poison();
                RunStatus::Trapped(t)
            }
            Err(Stop::Detected) => {
                self.env.poison();
                RunStatus::Detected
            }
            Err(Stop::Budget) => {
                self.env.poison();
                RunStatus::Hang
            }
        }
    }

    /// Assembles the [`RunOutput`], leaving the state empty.
    pub(crate) fn into_output(self, status: RunStatus) -> (RunOutput, Memory) {
        let output = RunOutput {
            status,
            dynamic_insts: self.dynamic_insts,
            eligible_results: self.eligible_results,
            loads: self.loads,
            stores: self.stores,
            cond_branches: self.cond_branches,
            outputs: self.outputs,
            console: self.console,
            injected_site: self.injected_site,
            injected_at_inst: self.injected_at_inst,
            site_profile: if self.profile_sites {
                Some(self.site_profile)
            } else {
                None
            },
            eligible_trace: if self.trace_eligible {
                Some(self.eligible_trace)
            } else {
                None
            },
        };
        (output, self.memory)
    }
}

/// Charges one dynamic (non-phi) instruction against the budget and, at
/// the poll cadence, checks the poison flag and wall-clock deadline.
/// Both engines call this before executing each instruction, so budget
/// exhaustion and watchdog firings land on identical counter values.
#[inline]
pub(crate) fn tick(state: &mut RunState<'_>) -> Result<(), Stop> {
    state.dynamic_insts += 1;
    if state.dynamic_insts > state.max_insts {
        return Err(Stop::Budget);
    }
    if state.dynamic_insts.is_multiple_of(POISON_POLL_INTERVAL) {
        if state.env.poisoned() {
            return Err(Stop::Trap(Trap::MpiAbort));
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() >= deadline {
                return Err(Stop::Budget);
            }
        }
    }
    Ok(())
}

/// Counts one eligible result and applies the injection plan to it.
/// This is the single implementation behind both engines: the eligible
/// sequence (and therefore every campaign plan) is engine-independent.
#[inline]
pub(crate) fn maybe_inject(
    state: &mut RunState<'_>,
    fid: FuncId,
    id: InstId,
    value: RtVal,
) -> RtVal {
    let n = state.eligible_results;
    state.eligible_results += 1;
    if state.profile_sites {
        *state.site_profile.entry((fid, id)).or_insert(0) += 1;
    }
    if state.trace_eligible {
        trace_eligible_site(state, fid, id);
    }
    let counter = match state.injection {
        Some(Injection { site: Some(s), .. }) => {
            if s != (fid, id) {
                return value;
            }
            let c = state.site_instance;
            state.site_instance += 1;
            c
        }
        _ => n,
    };
    match state.injection {
        Some(inj) if inj.model.injects_values() && inj.target == counter => {
            state.injected_site = Some((fid, id));
            state.injected_at_inst = Some(state.dynamic_insts);
            let width = value.ty().bit_width().max(1);
            RtVal::from_bits(
                value.ty(),
                inj.model.corrupt_bits(inj.bit, width, value.bits()),
            )
        }
        _ => value,
    }
}

/// Appends one eligible execution of `(fid, id)` to the RLE trace,
/// merging into the previous run when the site repeats back-to-back.
#[inline]
fn trace_eligible_site(state: &mut RunState<'_>, fid: FuncId, id: InstId) {
    match state.eligible_trace.last_mut() {
        Some((f, i, n)) if *f == fid && *i == id => *n += 1,
        _ => state.eligible_trace.push((fid, id, 1)),
    }
}

/// Counts one `load` execution and corrupts its raw image when a
/// [`FaultModel::LoadValue`] plan targets it. Runs *before* type
/// masking, so both engines see the same post-corruption image.
#[inline]
pub(crate) fn maybe_corrupt_load(
    state: &mut RunState<'_>,
    fid: FuncId,
    id: InstId,
    bits: u64,
) -> u64 {
    let n = state.loads;
    state.loads = n + 1;
    if n != state.load_target {
        return bits;
    }
    let inj = state.injection.expect("load target armed without a plan");
    state.injected_site = Some((fid, id));
    state.injected_at_inst = Some(state.dynamic_insts);
    inj.model.corrupt_bits(inj.bit, 64, bits)
}

/// Counts one `store` execution and corrupts the image being written
/// when a [`FaultModel::StoreValue`] plan targets it.
#[inline]
pub(crate) fn maybe_corrupt_store(
    state: &mut RunState<'_>,
    fid: FuncId,
    id: InstId,
    bits: u64,
) -> u64 {
    let n = state.stores;
    state.stores = n + 1;
    if n != state.store_target {
        return bits;
    }
    let inj = state.injection.expect("store target armed without a plan");
    state.injected_site = Some((fid, id));
    state.injected_at_inst = Some(state.dynamic_insts);
    inj.model.corrupt_bits(inj.bit, 64, bits)
}

/// Counts one conditional-branch decision and inverts it when a
/// [`FaultModel::BranchFlip`] plan targets it.
#[inline]
pub(crate) fn maybe_flip_branch(
    state: &mut RunState<'_>,
    fid: FuncId,
    id: InstId,
    taken: bool,
) -> bool {
    let n = state.cond_branches;
    state.cond_branches = n + 1;
    if n != state.branch_target {
        return taken;
    }
    state.injected_site = Some((fid, id));
    state.injected_at_inst = Some(state.dynamic_insts);
    !taken
}

/// Register-resident image of the per-instruction counters, for the
/// compiled engine's hot loop.
///
/// The reference engine updates [`RunState::dynamic_insts`] and
/// [`RunState::eligible_results`] through the state pointer on every
/// instruction; at pre-decoded speeds those round-trips are a
/// measurable fraction of the whole instruction. The compiled engine
/// instead loads the counters into this plain struct at frame entry
/// ([`HotCounters::load`]), updates them as locals the optimizer keeps
/// in registers, and writes them back ([`HotCounters::flush`]) at frame
/// exit, around calls into another frame, and before any slow path that
/// reads the true counts from `RunState` (watermark processing,
/// full injection bookkeeping). `flush` is idempotent, so every exit
/// edge — returns, traps, budget stops — can flush unconditionally.
#[derive(Copy, Clone, Debug)]
pub(crate) struct HotCounters {
    pub(crate) dynamic_insts: u64,
    next_stop: u64,
    eligible_results: u64,
    loads: u64,
    stores: u64,
    cond_branches: u64,
    fast_target: u64,
    load_target: u64,
    store_target: u64,
    branch_target: u64,
    slow_inject: bool,
}

impl HotCounters {
    pub(crate) fn load(state: &RunState<'_>) -> Self {
        HotCounters {
            dynamic_insts: state.dynamic_insts,
            next_stop: state.next_stop,
            eligible_results: state.eligible_results,
            loads: state.loads,
            stores: state.stores,
            cond_branches: state.cond_branches,
            fast_target: state.fast_target,
            load_target: state.load_target,
            store_target: state.store_target,
            branch_target: state.branch_target,
            slow_inject: state.slow_inject,
        }
    }

    pub(crate) fn flush(&self, state: &mut RunState<'_>) {
        state.dynamic_insts = self.dynamic_insts;
        state.eligible_results = self.eligible_results;
        state.loads = self.loads;
        state.stores = self.stores;
        state.cond_branches = self.cond_branches;
    }

    /// Exact-cadence budget/poll charge for the compiled engine.
    ///
    /// Semantically identical to [`tick`] — same budget stop instant,
    /// same poison/deadline poll at every [`POISON_POLL_INTERVAL`]
    /// multiple — but folded into a single comparison against the
    /// precomputed [`RunState::next_stop`] watermark, which is always
    /// the earlier of "budget exceeded" (`max_insts + 1`) and the next
    /// poll multiple. Phi-move charges can jump the counter past the
    /// watermark without checking (as in the reference); the next tick
    /// then lands in the slow path, which re-derives both conditions
    /// exactly.
    #[inline]
    pub(crate) fn tick(&mut self, state: &mut RunState<'_>) -> Result<(), Stop> {
        self.dynamic_insts += 1;
        if self.dynamic_insts >= self.next_stop {
            self.flush(state);
            tick_watermark(state)?;
            self.next_stop = state.next_stop;
        }
        Ok(())
    }

    /// Bit-image twin of [`maybe_inject`] for the pre-decoded engine,
    /// which stores raw 64-bit register images instead of [`RtVal`]s.
    /// `width` is the static bit width of the result type
    /// (`bit_width().max(1)`, precomputed at lowering), so the flip
    /// `bits ^ (1 << (inj.bit % width))` lands on exactly the bit
    /// [`RtVal::flip_bit`] would flip. Booleans stay canonical (`0`/`1`)
    /// because their width is 1.
    ///
    /// The fast path covers the campaign-dominant configurations (no
    /// injection, or a global-index plan) with one counter bump and one
    /// compare against [`RunState::fast_target`]; site-restricted plans
    /// and site profiling divert to [`inject_slow_bits`], which
    /// replicates [`maybe_inject`]'s full bookkeeping. Both paths must
    /// stay in lock-step with `maybe_inject`;
    /// `injection_bits_twin_agrees` in the compiled-engine tests pins
    /// the equivalence.
    #[inline]
    pub(crate) fn inject(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        id: InstId,
        width: u32,
        bits: u64,
    ) -> u64 {
        let n = self.eligible_results;
        self.eligible_results = n + 1;
        if self.slow_inject {
            self.flush(state);
            return inject_slow_bits(state, n, fid, id, width, bits);
        }
        if n != self.fast_target {
            return bits;
        }
        match state.injection {
            Some(inj) => {
                state.injected_site = Some((fid, id));
                state.injected_at_inst = Some(self.dynamic_insts);
                inj.model.corrupt_bits(inj.bit, width, bits)
            }
            None => bits,
        }
    }

    /// Bit-image twin of [`maybe_corrupt_load`].
    #[inline]
    pub(crate) fn load_bits(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        id: InstId,
        bits: u64,
    ) -> u64 {
        let n = self.loads;
        self.loads = n + 1;
        if n != self.load_target {
            return bits;
        }
        let inj = state.injection.expect("load target armed without a plan");
        state.injected_site = Some((fid, id));
        state.injected_at_inst = Some(self.dynamic_insts);
        inj.model.corrupt_bits(inj.bit, 64, bits)
    }

    /// Bit-image twin of [`maybe_corrupt_store`].
    #[inline]
    pub(crate) fn store_bits(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        id: InstId,
        bits: u64,
    ) -> u64 {
        let n = self.stores;
        self.stores = n + 1;
        if n != self.store_target {
            return bits;
        }
        let inj = state.injection.expect("store target armed without a plan");
        state.injected_site = Some((fid, id));
        state.injected_at_inst = Some(self.dynamic_insts);
        inj.model.corrupt_bits(inj.bit, 64, bits)
    }

    /// Twin of [`maybe_flip_branch`] for the pre-decoded engine.
    #[inline]
    pub(crate) fn branch_edge(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        id: InstId,
        taken: bool,
    ) -> bool {
        let n = self.cond_branches;
        self.cond_branches = n + 1;
        if n != self.branch_target {
            return taken;
        }
        state.injected_site = Some((fid, id));
        state.injected_at_inst = Some(self.dynamic_insts);
        !taken
    }
}

#[cold]
fn tick_watermark(state: &mut RunState<'_>) -> Result<(), Stop> {
    if state.dynamic_insts > state.max_insts {
        return Err(Stop::Budget);
    }
    if state.dynamic_insts.is_multiple_of(POISON_POLL_INTERVAL) {
        if state.env.poisoned() {
            return Err(Stop::Trap(Trap::MpiAbort));
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() >= deadline {
                return Err(Stop::Budget);
            }
        }
    }
    let next_poll = (state.dynamic_insts / POISON_POLL_INTERVAL + 1) * POISON_POLL_INTERVAL;
    state.next_stop = next_poll.min(state.max_insts.saturating_add(1));
    Ok(())
}

/// Full injection bookkeeping (site profiling, site-restricted plans)
/// for the bit-image engine. `n` is the eligible index already claimed
/// by the caller.
fn inject_slow_bits(
    state: &mut RunState<'_>,
    n: u64,
    fid: FuncId,
    id: InstId,
    width: u32,
    bits: u64,
) -> u64 {
    if state.profile_sites {
        *state.site_profile.entry((fid, id)).or_insert(0) += 1;
    }
    if state.trace_eligible {
        trace_eligible_site(state, fid, id);
    }
    let counter = match state.injection {
        Some(Injection { site: Some(s), .. }) => {
            if s != (fid, id) {
                return bits;
            }
            let c = state.site_instance;
            state.site_instance += 1;
            c
        }
        _ => n,
    };
    match state.injection {
        Some(inj) if inj.model.injects_values() && inj.target == counter => {
            state.injected_site = Some((fid, id));
            state.injected_at_inst = Some(state.dynamic_insts);
            inj.model.corrupt_bits(inj.bit, width, bits)
        }
        _ => bits,
    }
}

/// Validates an entry-point signature against a run configuration,
/// producing the same [`RunError`] messages from both engines.
pub(crate) fn validate_entry(
    entry: &str,
    params: &[Type],
    config: &RunConfig,
) -> Result<(), RunError> {
    if params.len() != config.args.len() {
        return Err(RunError(format!(
            "`{}` takes {} arguments, {} supplied",
            entry,
            params.len(),
            config.args.len()
        )));
    }
    for (i, (want, got)) in params.iter().zip(&config.args).enumerate() {
        if *want != got.ty() {
            return Err(RunError(format!(
                "argument {i}: expected {want}, got {:?}",
                got.ty()
            )));
        }
    }
    Ok(())
}

/// The same `no function named ...` error both engines report.
pub(crate) fn no_such_function(entry: &str) -> RunError {
    RunError(format!("no function named `{entry}`"))
}

/// An interpreter bound to a module.
///
/// The machine is stateless between runs: each call to [`Machine::run`]
/// executes with fresh memory, counters, and output streams.
#[derive(Debug)]
pub struct Machine<'m> {
    module: &'m Module,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module`. The module is assumed verified
    /// (see [`ipas_ir::verify::verify_module`]); the interpreter panics
    /// on malformed IR rather than trapping.
    pub fn new(module: &'m Module) -> Self {
        Machine { module }
    }

    /// The interpreted module.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Runs under the serial (single-rank) environment.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the entry function does not exist or the
    /// argument count/types mismatch. Runtime faults are reported in
    /// [`RunOutput::status`], not as errors.
    pub fn run(&mut self, config: &RunConfig) -> Result<RunOutput, RunError> {
        let mut env = SerialEnv;
        self.run_with_env(config, &mut env)
    }

    /// Runs under a caller-provided environment (used by `ipas-mpisim`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_with_env(
        &mut self,
        config: &RunConfig,
        env: &mut dyn Env,
    ) -> Result<RunOutput, RunError> {
        let entry = self
            .module
            .function_id(&config.entry)
            .ok_or_else(|| no_such_function(&config.entry))?;
        let func = self.module.function(entry);
        validate_entry(&config.entry, func.params(), config)?;

        let mut state = RunState::start(Memory::new(), config, env);
        let result = self.exec_function(&mut state, entry, &config.args, 0);
        let status = state.finish(result);
        let (output, _memory) = state.into_output(status);
        Ok(output)
    }

    fn exec_function(
        &self,
        state: &mut RunState<'_>,
        fid: FuncId,
        args: &[RtVal],
        depth: usize,
    ) -> Result<Option<RtVal>, Stop> {
        if depth >= MAX_CALL_DEPTH {
            return Err(Stop::Trap(Trap::StackOverflow));
        }
        let func = self.module.function(fid);
        let mut regs: Vec<RtVal> = vec![RtVal::Unit; func.num_inst_slots()];
        let mut frame_allocs: Vec<u64> = Vec::new();

        let mut block = func.entry();
        let mut prev_block: Option<ipas_ir::BlockId> = None;

        let result = 'outer: loop {
            let insts = func.block(block).insts();
            let mut idx = 0;

            // Phi nodes: parallel copy from the incoming edge.
            if let Some(pred) = prev_block {
                let mut updates: Vec<(InstId, RtVal)> = Vec::new();
                while idx < insts.len() {
                    let id = insts[idx];
                    if let Inst::Phi { incomings, .. } = func.inst(id) {
                        let (_, v) = incomings
                            .iter()
                            .find(|(p, _)| *p == pred)
                            .expect("verified phi has an incoming per predecessor");
                        updates.push((id, self.eval(func, &regs, args, *v)));
                        idx += 1;
                    } else {
                        break;
                    }
                }
                state.dynamic_insts += updates.len() as u64;
                for (id, v) in updates {
                    regs[id.index()] = v;
                }
            }

            while idx < insts.len() {
                let id = insts[idx];
                idx += 1;
                if let Err(stop) = tick(state) {
                    break 'outer Err(stop);
                }

                let inst = func.inst(id);
                match inst {
                    Inst::Phi { .. } => {
                        // Entry-block phis cannot exist (no predecessors);
                        // later phis were consumed above.
                        unreachable!("phi encountered mid-block in verified IR");
                    }
                    Inst::Br { target } => {
                        prev_block = Some(block);
                        block = *target;
                        continue 'outer;
                    }
                    Inst::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.eval(func, &regs, args, *cond).as_bool();
                        let c = maybe_flip_branch(state, fid, id, c);
                        prev_block = Some(block);
                        block = if c { *then_bb } else { *else_bb };
                        continue 'outer;
                    }
                    Inst::Ret { value } => {
                        let v = value.map(|v| self.eval(func, &regs, args, v));
                        break 'outer Ok(v);
                    }
                    Inst::Store { value, addr, .. } => {
                        let v = self.eval(func, &regs, args, *value);
                        let a = self.eval(func, &regs, args, *addr).as_ptr();
                        let bits = maybe_corrupt_store(state, fid, id, v.bits());
                        if let Err(t) = state.memory.store(a, bits) {
                            break 'outer Err(Stop::Trap(t));
                        }
                    }
                    _ => {
                        let result = match self
                            .exec_value_inst(state, func, fid, id, &regs, args, inst, depth)
                        {
                            Ok(v) => v,
                            Err(stop) => break 'outer Err(stop),
                        };
                        let result = if is_fault_site(inst) {
                            maybe_inject(state, fid, id, result)
                        } else {
                            result
                        };
                        if let Inst::Alloca { .. } = inst {
                            frame_allocs.push(result.as_ptr());
                        }
                        regs[id.index()] = result;
                    }
                }
            }
            unreachable!("verified blocks end in terminators");
        };

        // Release stack regions on every exit path.
        for base in frame_allocs {
            // Frame regions are always valid bases; ignore double-free
            // that can only arise from user `free` of an alloca pointer.
            let _ = state.memory.free(base);
        }
        result
    }

    fn eval(&self, _func: &Function, regs: &[RtVal], args: &[RtVal], v: Value) -> RtVal {
        match v {
            Value::Inst(id) => regs[id.index()],
            Value::Param(n) => args[n as usize],
            Value::Const(c) => match c {
                ipas_ir::Constant::I64(x) => RtVal::I64(x),
                ipas_ir::Constant::F64Bits(b) => RtVal::F64(f64::from_bits(b)),
                ipas_ir::Constant::Bool(b) => RtVal::Bool(b),
                ipas_ir::Constant::Null => RtVal::Ptr(0),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_value_inst(
        &self,
        state: &mut RunState<'_>,
        func: &Function,
        fid: FuncId,
        id: InstId,
        regs: &[RtVal],
        args: &[RtVal],
        inst: &Inst,
        depth: usize,
    ) -> Result<RtVal, Stop> {
        match inst {
            Inst::Binary { op, lhs, rhs, .. } => {
                let l = self.eval(func, regs, args, *lhs);
                let r = self.eval(func, regs, args, *rhs);
                exec_binary(*op, l, r).map_err(Stop::Trap)
            }
            Inst::Icmp { pred, lhs, rhs } => {
                let l = self.eval(func, regs, args, *lhs);
                let r = self.eval(func, regs, args, *rhs);
                let (a, b) = match (l, r) {
                    (RtVal::Ptr(a), RtVal::Ptr(b)) => (a as i64, b as i64),
                    (RtVal::Bool(a), RtVal::Bool(b)) => (a as i64, b as i64),
                    _ => (l.as_i64(), r.as_i64()),
                };
                Ok(RtVal::Bool(pred.eval(a, b)))
            }
            Inst::Fcmp { pred, lhs, rhs } => {
                let l = self.eval(func, regs, args, *lhs).as_f64();
                let r = self.eval(func, regs, args, *rhs).as_f64();
                Ok(RtVal::Bool(pred.eval(l, r)))
            }
            Inst::Cast { op, arg, .. } => {
                let v = self.eval(func, regs, args, *arg);
                Ok(exec_cast(*op, v))
            }
            Inst::Select {
                cond,
                then_value,
                else_value,
                ..
            } => {
                let c = self.eval(func, regs, args, *cond).as_bool();
                Ok(self.eval(func, regs, args, if c { *then_value } else { *else_value }))
            }
            Inst::Alloca { count, .. } => {
                let bytes = (*count as i64) * 8;
                state
                    .memory
                    .alloc(bytes)
                    .map(RtVal::Ptr)
                    .map_err(Stop::Trap)
            }
            Inst::Load { ty, addr } => {
                let a = self.eval(func, regs, args, *addr).as_ptr();
                let bits = state.memory.load(a).map_err(Stop::Trap)?;
                let bits = maybe_corrupt_load(state, fid, id, bits);
                Ok(RtVal::from_bits(*ty, bits))
            }
            Inst::Gep { base, index, .. } => {
                let b = self.eval(func, regs, args, *base).as_ptr();
                let i = self.eval(func, regs, args, *index).as_i64();
                Ok(RtVal::Ptr(gep_addr(b, i)))
            }
            Inst::Call {
                callee,
                args: call_args,
                ..
            } => {
                let mut vals = Vec::with_capacity(call_args.len());
                for a in call_args {
                    vals.push(self.eval(func, regs, args, *a));
                }
                match callee {
                    Callee::Func(fid) => self
                        .exec_function(state, *fid, &vals, depth + 1)
                        .map(|r| r.unwrap_or(RtVal::Unit)),
                    Callee::Intrinsic(intr) => exec_intrinsic(state, *intr, &vals),
                }
            }
            Inst::Phi { .. }
            | Inst::Store { .. }
            | Inst::Br { .. }
            | Inst::CondBr { .. }
            | Inst::Ret { .. } => {
                unreachable!("handled by the block loop")
            }
        }
    }
}

pub(crate) fn exec_binary(op: BinOp, l: RtVal, r: RtVal) -> Result<RtVal, Trap> {
    use BinOp::*;
    if op.is_float() {
        let a = l.as_f64();
        let b = r.as_f64();
        let v = match op {
            Fadd => a + b,
            Fsub => a - b,
            Fmul => a * b,
            Fdiv => a / b,
            Frem => a % b,
            _ => unreachable!("is_float covers float opcodes"),
        };
        return Ok(RtVal::F64(v));
    }
    // Bitwise on booleans.
    if let (RtVal::Bool(a), RtVal::Bool(b)) = (l, r) {
        let v = match op {
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            _ => unreachable!("verifier restricts bool binaries to bitwise"),
        };
        return Ok(RtVal::Bool(v));
    }
    let a = l.as_i64();
    let b = r.as_i64();
    let v = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Sdiv => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            if a == i64::MIN && b == -1 {
                return Err(Trap::DivOverflow);
            }
            a / b
        }
        Srem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            if a == i64::MIN && b == -1 {
                return Err(Trap::DivOverflow);
            }
            a % b
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl((b & 63) as u32),
        Lshr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        Ashr => a.wrapping_shr((b & 63) as u32),
        Fadd | Fsub | Fmul | Fdiv | Frem => unreachable!("handled above"),
    };
    Ok(RtVal::I64(v))
}

pub(crate) fn exec_cast(op: CastOp, v: RtVal) -> RtVal {
    match op {
        CastOp::Sitofp => RtVal::F64(v.as_i64() as f64),
        CastOp::Fptosi => RtVal::I64(ipas_ir::passes::constfold::saturating_f64_to_i64(
            v.as_f64(),
        )),
        CastOp::Zext => RtVal::I64(v.as_bool() as i64),
        CastOp::Trunc => RtVal::Bool(v.as_i64() & 1 == 1),
        CastOp::Bitcast => match v {
            RtVal::I64(x) => RtVal::F64(f64::from_bits(x as u64)),
            RtVal::F64(x) => RtVal::I64(x.to_bits() as i64),
            other => panic!("bitcast of {other:?}"),
        },
        CastOp::Ptrtoint => RtVal::I64(v.as_ptr() as i64),
        CastOp::Inttoptr => RtVal::Ptr(v.as_i64() as u64),
    }
}

pub(crate) fn exec_intrinsic(
    state: &mut RunState<'_>,
    intr: Intrinsic,
    vals: &[RtVal],
) -> Result<RtVal, Stop> {
    let f1 = |i: usize| vals[i].as_f64();
    let out = match intr {
        Intrinsic::Sqrt => RtVal::F64(f1(0).sqrt()),
        Intrinsic::Sin => RtVal::F64(f1(0).sin()),
        Intrinsic::Cos => RtVal::F64(f1(0).cos()),
        Intrinsic::Exp => RtVal::F64(f1(0).exp()),
        Intrinsic::Log => RtVal::F64(f1(0).ln()),
        Intrinsic::Pow => RtVal::F64(f1(0).powf(f1(1))),
        Intrinsic::Fabs => RtVal::F64(f1(0).abs()),
        Intrinsic::Floor => RtVal::F64(f1(0).floor()),
        Intrinsic::Malloc => {
            let p = state.memory.alloc(vals[0].as_i64()).map_err(Stop::Trap)?;
            RtVal::Ptr(p)
        }
        Intrinsic::Free => {
            state.memory.free(vals[0].as_ptr()).map_err(Stop::Trap)?;
            RtVal::Unit
        }
        Intrinsic::PrintI64 => {
            state.console.push(vals[0].as_i64().to_string());
            RtVal::Unit
        }
        Intrinsic::PrintF64 => {
            state.console.push(format!("{}", vals[0].as_f64()));
            RtVal::Unit
        }
        Intrinsic::OutputI64 => {
            state.outputs.push_i(vals[0].as_i64());
            RtVal::Unit
        }
        Intrinsic::OutputF64 => {
            state.outputs.push_f(vals[0].as_f64());
            RtVal::Unit
        }
        Intrinsic::MpiRank => RtVal::I64(state.env.rank()),
        Intrinsic::MpiSize => RtVal::I64(state.env.size()),
        Intrinsic::MpiAllreduceSum => {
            RtVal::F64(state.env.allreduce_sum_f(f1(0)).map_err(Stop::Trap)?)
        }
        Intrinsic::MpiAllreduceSumI => RtVal::I64(
            state
                .env
                .allreduce_sum_i(vals[0].as_i64())
                .map_err(Stop::Trap)?,
        ),
        Intrinsic::MpiAllreduceMax => {
            RtVal::F64(state.env.allreduce_max_f(f1(0)).map_err(Stop::Trap)?)
        }
        Intrinsic::MpiBarrier => {
            state.env.barrier().map_err(Stop::Trap)?;
            RtVal::Unit
        }
        Intrinsic::MpiAllgatherF => {
            let base = vals[0].as_ptr();
            let n = collective_len(vals[1].as_i64())?;
            let (lo, hi) = block_partition(state.env.rank(), state.env.size(), n);
            let mut chunk = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let bits = state
                    .memory
                    .load(gep_addr(base, i as i64))
                    .map_err(Stop::Trap)?;
                chunk.push(f64::from_bits(bits));
            }
            let full = state.env.allgather_f(chunk, lo, n).map_err(Stop::Trap)?;
            debug_assert_eq!(full.len(), n);
            for (i, v) in full.into_iter().enumerate() {
                state
                    .memory
                    .store(gep_addr(base, i as i64), v.to_bits())
                    .map_err(Stop::Trap)?;
            }
            RtVal::Unit
        }
        Intrinsic::MpiAllreduceArrF | Intrinsic::MpiAllreduceArrI => {
            let base = vals[0].as_ptr();
            let n = collective_len(vals[1].as_i64())?;
            let mut data = Vec::with_capacity(n);
            for i in 0..n {
                data.push(
                    state
                        .memory
                        .load(gep_addr(base, i as i64))
                        .map_err(Stop::Trap)?,
                );
            }
            let reduced: Vec<u64> = if intr == Intrinsic::MpiAllreduceArrF {
                state
                    .env
                    .allreduce_vec_f(data.into_iter().map(f64::from_bits).collect())
                    .map_err(Stop::Trap)?
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            } else {
                state
                    .env
                    .allreduce_vec_i(data.into_iter().map(|b| b as i64).collect())
                    .map_err(Stop::Trap)?
                    .into_iter()
                    .map(|v| v as u64)
                    .collect()
            };
            for (i, v) in reduced.into_iter().enumerate() {
                state
                    .memory
                    .store(gep_addr(base, i as i64), v)
                    .map_err(Stop::Trap)?;
            }
            RtVal::Unit
        }
        Intrinsic::IpasCheckI
        | Intrinsic::IpasCheckF
        | Intrinsic::IpasCheckP
        | Intrinsic::IpasCheckB => {
            if vals[0].bits() != vals[1].bits() {
                return Err(Stop::Detected);
            }
            RtVal::Unit
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::parse_module;

    fn run_src(src: &str) -> RunOutput {
        let module = parse_module(src).unwrap();
        ipas_ir::verify::verify_module(&module).unwrap();
        Machine::new(&module).run(&RunConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let out = run_src(
            r#"
fn @main() -> i64 {
bb0:
  %v0 = mul i64 6, 7
  %v1 = call output_i64(%v0) -> void
  ret %v0
}
"#,
        );
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(42))));
        assert_eq!(out.outputs.as_ints(), vec![42]);
    }

    #[test]
    fn loop_executes_and_counts() {
        let out = run_src(
            r#"
fn @main() -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v3]
  %v1 = phi i64 [bb0: 0, bb2: %v4]
  %v2 = icmp slt %v0, 10
  condbr %v2, bb2, bb3
bb2:
  %v4 = add i64 %v1, %v0
  %v3 = add i64 %v0, 1
  br bb1
bb3:
  ret %v1
}
"#,
        );
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(45))));
        assert!(out.dynamic_insts > 40);
        // adds + icmps are eligible sites.
        assert!(out.eligible_results > 20);
    }

    #[test]
    fn memory_and_calls() {
        let out = run_src(
            r#"
fn @main() -> f64 {
bb0:
  %v0 = call malloc(16) -> ptr
  %v1 = gep f64 %v0, 1
  store f64 2.25, %v1
  %v2 = load f64, %v1
  %v3 = call @twice(%v2) -> f64
  %v4 = call free(%v0) -> void
  ret %v3
}
fn @twice(f64) -> f64 {
bb0:
  %v0 = fadd f64 %arg0, %arg0
  ret %v0
}
"#,
        );
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::F64(4.5))));
    }

    #[test]
    fn div_by_zero_traps() {
        let out = run_src(
            r#"
fn @main() -> i64 {
bb0:
  %v0 = add i64 0, 0
  %v1 = sdiv i64 5, %v0
  ret %v1
}
"#,
        );
        assert_eq!(out.status, RunStatus::Trapped(Trap::DivByZero));
    }

    #[test]
    fn null_deref_traps() {
        let out = run_src(
            r#"
fn @main() {
bb0:
  store i64 1, null
  ret
}
"#,
        );
        assert_eq!(out.status, RunStatus::Trapped(Trap::NullDeref));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let module = parse_module(
            r#"
fn @main() {
bb0:
  br bb0
}
"#,
        )
        .unwrap();
        let mut m = Machine::new(&module);
        let out = m
            .run(&RunConfig {
                max_insts: 1000,
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Hang);
    }

    #[test]
    fn infinite_loop_hits_wall_clock_watchdog() {
        let module = parse_module(
            r#"
fn @main() {
bb0:
  br bb0
}
"#,
        )
        .unwrap();
        let mut m = Machine::new(&module);
        // No instruction budget: only the wall-clock deadline can stop
        // this run.
        let out = m
            .run(&RunConfig {
                wall_limit: Some(Duration::from_millis(20)),
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Hang);
    }

    #[test]
    fn generous_wall_limit_does_not_fire() {
        let out_limited = {
            let module = parse_module(
                r#"
fn @main() -> i64 {
bb0:
  %v0 = add i64 20, 22
  ret %v0
}
"#,
            )
            .unwrap();
            Machine::new(&module)
                .run(&RunConfig {
                    wall_limit: Some(Duration::from_secs(3600)),
                    ..RunConfig::default()
                })
                .unwrap()
        };
        assert_eq!(
            out_limited.status,
            RunStatus::Completed(Some(RtVal::I64(42)))
        );
    }

    #[test]
    fn deep_recursion_traps() {
        let out = run_src(
            r#"
fn @main() -> i64 {
bb0:
  %v0 = call @rec(0) -> i64
  ret %v0
}
fn @rec(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  %v1 = call @rec(%v0) -> i64
  ret %v1
}
"#,
        );
        assert_eq!(out.status, RunStatus::Trapped(Trap::StackOverflow));
    }

    #[test]
    fn injection_flips_chosen_result() {
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = add i64 1, 1
  %v1 = add i64 %v0, 1
  %v2 = call output_i64(%v1) -> void
  ret %v1
}
"#;
        let module = parse_module(src).unwrap();
        let mut m = Machine::new(&module);
        // Clean run: outputs 3; two eligible sites (two adds).
        let clean = m.run(&RunConfig::default()).unwrap();
        assert_eq!(clean.outputs.as_ints(), vec![3]);
        assert_eq!(clean.eligible_results, 2);
        // Flip bit 3 (value 8) of the first add's result: 2^8=10 -> 11.
        let out = m
            .run(&RunConfig {
                injection: Some(Injection::at_global_index(0, 3)),
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.outputs.as_ints(), vec![11]);
        assert!(out.injected_site.is_some());
    }

    #[test]
    fn injection_bit_is_reduced_modulo_width() {
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = icmp eq 1, 1
  %v1 = zext i64 %v0
  ret %v1
}
"#;
        let module = parse_module(src).unwrap();
        let mut m = Machine::new(&module);
        // icmp result is a bool (1 bit); bit 17 % 1 == 0 flips it.
        let out = m
            .run(&RunConfig {
                injection: Some(Injection::at_global_index(0, 17)),
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(0))));
    }

    #[test]
    fn ipas_check_detects_mismatch() {
        let out = run_src(
            r#"
fn @main() {
bb0:
  %v0 = add i64 1, 2
  %v1 = call __ipas_check_i(%v0, 4) -> void
  ret
}
"#,
        );
        assert_eq!(out.status, RunStatus::Detected);
    }

    #[test]
    fn ipas_check_passes_on_match() {
        let out = run_src(
            r#"
fn @main() {
bb0:
  %v0 = add i64 1, 2
  %v1 = call __ipas_check_i(%v0, 3) -> void
  ret
}
"#,
        );
        assert!(out.status.is_completed());
    }

    #[test]
    fn corrupted_pointer_usually_traps() {
        // Flip a high bit in a gep result: address lands far outside.
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = call malloc(64) -> ptr
  %v1 = gep i64 %v0, 2
  store i64 5, %v1
  %v2 = load i64, %v1
  ret %v2
}
"#;
        let module = parse_module(src).unwrap();
        let mut m = Machine::new(&module);
        let out = m
            .run(&RunConfig {
                injection: Some(Injection::at_global_index(0, 55)),
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Trapped(Trap::OutOfBounds));
    }

    #[test]
    fn alloca_frees_on_return() {
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = call @local() -> i64
  %v1 = call @local() -> i64
  %v2 = add i64 %v0, %v1
  ret %v2
}
fn @local() -> i64 {
bb0:
  %v0 = alloca i64, 4
  store i64 21, %v0
  %v1 = load i64, %v0
  ret %v1
}
"#;
        let module = parse_module(src).unwrap();
        let mut m = Machine::new(&module);
        let out = m.run(&RunConfig::default()).unwrap();
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(42))));
    }

    #[test]
    fn console_capture() {
        let out = run_src(
            r#"
fn @main() {
bb0:
  %v0 = call print_i64(7) -> void
  %v1 = call print_f64(1.5) -> void
  ret
}
"#,
        );
        assert_eq!(out.console, vec!["7".to_string(), "1.5".to_string()]);
    }

    #[test]
    fn missing_entry_is_run_error() {
        let module = parse_module("fn @foo() {\nbb0:\n  ret\n}\n").unwrap();
        let mut m = Machine::new(&module);
        assert!(m.run(&RunConfig::default()).is_err());
    }

    #[test]
    fn entry_args_are_passed() {
        let module =
            parse_module("fn @main(i64) -> i64 {\nbb0:\n  %v0 = mul i64 %arg0, 2\n  ret %v0\n}\n")
                .unwrap();
        let mut m = Machine::new(&module);
        let out = m
            .run(&RunConfig {
                args: vec![RtVal::I64(21)],
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(42))));
    }
}

/// Validates an array-collective element count. A fault-corrupted
/// length must become a trap (the §5.5 symptom path), never a host OOM
/// from a pre-sized buffer: counts are capped at the memory model's
/// largest possible allocation.
pub(crate) fn collective_len(n: i64) -> Result<usize, Stop> {
    const MAX_ELEMS: i64 = (1 << 30) / 8; // Memory::MAX_ALLOC_BYTES / cell
    if !(0..=MAX_ELEMS).contains(&n) {
        return Err(Stop::Trap(Trap::BadAlloc));
    }
    Ok(n as usize)
}

/// The block `[r·n/P, (r+1)·n/P)` owned by rank `r` of `p` over `n`
/// elements (the standard contiguous partition used by the MPI
/// collectives).
pub fn block_partition(rank: i64, size: i64, n: usize) -> (usize, usize) {
    let r = rank.max(0) as usize;
    let p = size.max(1) as usize;
    (r * n / p, (r + 1) * n / p)
}

#[cfg(test)]
mod collective_len_tests {
    use super::*;
    use ipas_ir::parser::parse_module;

    #[test]
    fn corrupted_collective_length_traps_instead_of_oom() {
        // A huge length reaching an array collective must trap like any
        // other bad allocation — this is reachable via fault injection
        // into the length computation.
        let module = parse_module(
            r#"
fn @main() {
bb0:
  %v0 = call malloc(64) -> ptr
  %v1 = mul i64 1099511627776, 4
  %v2 = call mpi_allgather_f(%v0, %v1) -> void
  ret
}
"#,
        )
        .unwrap();
        let mut m = Machine::new(&module);
        let out = m.run(&RunConfig::default()).unwrap();
        assert_eq!(out.status, RunStatus::Trapped(Trap::BadAlloc));

        let module = parse_module(
            r#"
fn @main() {
bb0:
  %v0 = call malloc(64) -> ptr
  %v1 = mul i64 1099511627776, 4
  %v2 = call mpi_allreduce_arr_i(%v0, %v1) -> void
  ret
}
"#,
        )
        .unwrap();
        let mut m = Machine::new(&module);
        let out = m.run(&RunConfig::default()).unwrap();
        assert_eq!(out.status, RunStatus::Trapped(Trap::BadAlloc));
    }

    #[test]
    fn reasonable_collective_lengths_still_work() {
        let module = parse_module(
            r#"
fn @main() -> f64 {
bb0:
  %v0 = call malloc(32) -> ptr
  store f64 2.5, %v0
  %v1 = call mpi_allgather_f(%v0, 4) -> void
  %v2 = load f64, %v0
  ret %v2
}
"#,
        )
        .unwrap();
        let mut m = Machine::new(&module);
        let out = m.run(&RunConfig::default()).unwrap();
        assert_eq!(out.status, RunStatus::Completed(Some(RtVal::F64(2.5))));
    }
}

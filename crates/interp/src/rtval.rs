//! Runtime values.

use std::fmt;

use ipas_ir::Type;

/// A value held in a virtual register during interpretation.
///
/// The bit-level view ([`RtVal::bits`], [`RtVal::from_bits`],
/// [`RtVal::flip_bit`]) is what the fault injector manipulates: a soft
/// error flips one bit of the 64-bit register holding the value (one bit
/// of the single meaningful bit for booleans).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RtVal {
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A pointer (encoded region/offset, see [`crate::memory`]).
    Ptr(u64),
    /// The absence of a value (result of void calls).
    Unit,
}

impl RtVal {
    /// The IR type this value inhabits.
    pub fn ty(self) -> Type {
        match self {
            RtVal::I64(_) => Type::I64,
            RtVal::F64(_) => Type::F64,
            RtVal::Bool(_) => Type::Bool,
            RtVal::Ptr(_) => Type::Ptr,
            RtVal::Unit => Type::Void,
        }
    }

    /// The raw 64-bit register image of the value.
    pub fn bits(self) -> u64 {
        match self {
            RtVal::I64(v) => v as u64,
            RtVal::F64(v) => v.to_bits(),
            RtVal::Bool(v) => v as u64,
            RtVal::Ptr(v) => v,
            RtVal::Unit => 0,
        }
    }

    /// Reconstructs a value of type `ty` from a register image.
    pub fn from_bits(ty: Type, bits: u64) -> Self {
        match ty {
            Type::I64 => RtVal::I64(bits as i64),
            Type::F64 => RtVal::F64(f64::from_bits(bits)),
            Type::Bool => RtVal::Bool(bits & 1 == 1),
            Type::Ptr => RtVal::Ptr(bits),
            Type::Void => RtVal::Unit,
        }
    }

    /// Returns a copy of this value with bit `bit` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the type's bit width (see
    /// [`Type::bit_width`]).
    pub fn flip_bit(self, bit: u32) -> Self {
        let width = self.ty().bit_width();
        assert!(bit < width, "bit {bit} out of range for {:?}", self.ty());
        RtVal::from_bits(self.ty(), self.bits() ^ (1u64 << bit))
    }

    /// Extracts an `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (IR is verified, so this
    /// indicates an interpreter bug).
    pub fn as_i64(self) -> i64 {
        match self {
            RtVal::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extracts an `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a float.
    pub fn as_f64(self) -> f64 {
        match self {
            RtVal::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn as_bool(self) -> bool {
        match self {
            RtVal::Bool(v) => v,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Extracts a pointer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer.
    pub fn as_ptr(self) -> u64 {
        match self {
            RtVal::Ptr(v) => v,
            other => panic!("expected ptr, got {other:?}"),
        }
    }
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::I64(v) => write!(f, "{v}"),
            RtVal::F64(v) => write!(f, "{v}"),
            RtVal::Bool(v) => write!(f, "{v}"),
            RtVal::Ptr(v) => write!(f, "ptr:{v:#x}"),
            RtVal::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for v in [
            RtVal::I64(-7),
            RtVal::F64(3.25),
            RtVal::Bool(true),
            RtVal::Ptr(0xdead_beef),
        ] {
            assert_eq!(RtVal::from_bits(v.ty(), v.bits()), v);
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let v = RtVal::I64(0);
        let flipped = v.flip_bit(5);
        assert_eq!(flipped.bits(), 1 << 5);
        assert_eq!(flipped.flip_bit(5), v);
    }

    #[test]
    fn flip_bit_on_float_exponent_is_large() {
        let v = RtVal::F64(1.0);
        let flipped = v.flip_bit(62); // top exponent bit
        assert!(flipped.as_f64() > 1e100 || flipped.as_f64() < 1.0);
    }

    #[test]
    fn flip_bool() {
        assert_eq!(RtVal::Bool(true).flip_bit(0), RtVal::Bool(false));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_out_of_range_panics() {
        RtVal::Bool(true).flip_bit(1);
    }
}

//! The pre-decoded execution engine.
//!
//! The reference interpreter in [`crate::machine`] walks the IR arena on
//! every dynamic instruction: it chases `InstId` indirections, pattern
//! matches [`ipas_ir::Value`] operands, converts constants, scans phi
//! incoming lists per block entry, and allocates a fresh register file
//! per call. Fault-injection campaigns execute the same module thousands
//! of times, so all of that per-instruction decode work is paid
//! redundantly — the cost FastFlip-style campaign optimization targets.
//!
//! [`CompiledProgram::compile`] performs the decode **once** per module:
//!
//! * every function is flattened into a dense array of [`CInst`]s in
//!   block-layout order, phis removed;
//! * SSA value IDs, parameters, *and constants* are resolved to frame
//!   slots — dense `u32` indices into a contiguous per-call window of
//!   one reusable value stack. Constants are interned into a
//!   per-function pool whose register images are copied into the frame
//!   tail on entry, so every operand read is one indexed load with no
//!   operand-kind branch;
//! * the static result type of every instruction is baked into its
//!   opcode variant, so the stack holds raw 64-bit register images
//!   (`u64`) instead of tagged [`RtVal`]s — no enum dispatch, no
//!   bits/value conversion in the hot loop. Booleans are kept canonical
//!   (`0`/`1`), which `Trunc`'s mask, comparison results, and the
//!   width-1 injection flip all preserve;
//! * branch targets become instruction indices, and each CFG edge
//!   carries its precomputed phi move-list (a parallel copy executed
//!   when the edge is taken);
//! * `gep` with a constant index folds to a precomputed byte offset,
//!   and casts that are the identity on register images (`zext` of a
//!   canonical bool, `bitcast`, `ptrtoint`, `inttoptr`) collapse to a
//!   single [`CInst::CastId`] opcode.
//!
//! [`CompiledMachine`] then executes the flat code with a resettable
//! value stack, alloca list, and [`Memory`] that keep their allocations
//! across runs.
//!
//! # Lowering invariants
//!
//! The compiled engine must be *bit-identical* to the reference, not
//! merely equivalent: campaign records embed `dynamic_insts`,
//! `eligible_results` ordering, injection sites `(FuncId, InstId)`, and
//! hang/watchdog cut-offs, and `--engine` must never change a campaign
//! result. Concretely:
//!
//! * every non-phi instruction charges `HotCounters::tick` (the
//!   register-resident watermark form of the reference's `tick`: same
//!   budget stop instant, same poison/deadline poll at the same
//!   4096-instruction cadence) *before* executing, in original
//!   block-layout order;
//! * taking a CFG edge charges `dynamic_insts` by the number of phi
//!   moves with **no** budget or poll check, matching the reference's
//!   block-entry parallel copy;
//! * eligible results are counted by `HotCounters::inject` — the
//!   bit-image twin of the reference's `maybe_inject`, fed the
//!   precomputed static bit width — in the same dynamic order, and
//!   injected sites are reported under the original [`InstId`];
//! * arithmetic is performed on the same `i64`/`f64` reconstructions
//!   the reference's typed ops use (verified IR guarantees the static
//!   type equals the runtime type), traps check the identical
//!   conditions, and intrinsics rebuild typed [`RtVal`] arguments and
//!   call the shared [`crate::machine::exec_intrinsic`].
//!
//! `tests/differential.rs` (workspace root) and the campaign
//! bit-identity suite in `ipas-faultsim` enforce all of this against
//! the reference on the five SciL workloads plus property-generated
//! programs.

use std::collections::HashMap;

use ipas_ir::inst::Callee;
use ipas_ir::passes::constfold::saturating_f64_to_i64;
use ipas_ir::{
    BinOp, BlockId, CastOp, Constant, FcmpPred, FuncId, Function, IcmpPred, Inst, InstId,
    Intrinsic, Module, Type, Value,
};

use crate::env::{Env, SerialEnv};
use crate::machine::{
    exec_intrinsic, is_fault_site, no_such_function, validate_entry, HotCounters, RunConfig,
    RunError, RunOutput, RunState, Stop, MAX_CALL_DEPTH,
};
use crate::memory::{gep_addr, Memory, POISON_ADDR};
use crate::rtval::RtVal;
use crate::trap::Trap;

/// Which interpreter executes a run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The tree-walking interpreter in [`crate::machine`] — the
    /// reference semantics.
    Reference,
    /// The pre-decoded engine in this module (default; bit-identical to
    /// the reference, several times faster).
    #[default]
    Compiled,
}

impl Engine {
    /// Both engines, in documentation order.
    pub const ALL: [Engine; 2] = [Engine::Reference, Engine::Compiled];

    /// The CLI spelling of this engine.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" | "ref" => Ok(Engine::Reference),
            "compiled" => Ok(Engine::Compiled),
            other => Err(format!(
                "unknown engine `{other}` (expected `reference` or `compiled`)"
            )),
        }
    }
}

/// Sentinel slot for instructions that produce no storable value
/// (void calls).
const NO_SLOT: u32 = u32::MAX;

/// Injection width of a 64-bit result (`i64`, `f64`, `ptr`).
const W64: u32 = 64;
/// Injection width of a boolean result.
const W1: u32 = 1;

/// A pre-decoded call target.
#[derive(Copy, Clone, Debug)]
enum CCallee {
    Func(FuncId),
    Intrinsic(Intrinsic),
}

/// One CFG edge: the target instruction index and the phi parallel-copy
/// (`(dst, src)` slot pairs) executed when the edge is taken.
#[derive(Clone, Debug)]
struct Edge {
    target: u32,
    moves: Box<[(u32, u32)]>,
}

/// A pre-decoded instruction. Operands are frame-slot indices (the
/// constant pool lives in the frame tail), and the static result type
/// is baked into the variant (plus a `width` field where it varies), so
/// execution never consults [`Type`]. `site` fields carry the original
/// [`InstId`] so injection records are engine-independent.
#[derive(Clone, Debug)]
enum CInst {
    /// Non-trapping integer binary op (`add` … `ashr`, excluding
    /// `sdiv`/`srem`).
    IBin {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    /// `sdiv` (`rem: false`) or `srem` (`rem: true`) — the trapping
    /// integer ops.
    IDiv {
        rem: bool,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    /// Float binary op (`fadd` … `frem`).
    FBin {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    /// Bitwise op on booleans (`and`/`or`/`xor` at type `bool`);
    /// canonical operands stay canonical.
    BBin {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    /// All operand types (`i64`, `ptr`, canonical `bool`) compare as
    /// sign-reinterpreted images, exactly like the reference's per-type
    /// arms.
    Icmp {
        pred: IcmpPred,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    Fcmp {
        pred: FcmpPred,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
    },
    /// An `icmp` immediately consumed by the next instruction, a
    /// `condbr` on its result: one dispatch, but still *two*
    /// instructions for tick/injection accounting (the compare ticks,
    /// injects, and stores its result — phis may read it — then the
    /// branch ticks and takes the edge on the possibly-flipped bit).
    IcmpBr {
        pred: IcmpPred,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
        /// The folded `condbr`'s own [`InstId`] (branch-class site).
        br_site: InstId,
        then_edge: u32,
        else_edge: u32,
    },
    /// `fcmp` + `condbr`, fused like [`CInst::IcmpBr`].
    FcmpBr {
        pred: FcmpPred,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
        /// The folded `condbr`'s own [`InstId`] (branch-class site).
        br_site: InstId,
        then_edge: u32,
        else_edge: u32,
    },
    /// A non-trapping integer binary op immediately followed by an
    /// unconditional `br` — the shape of every loop back-edge
    /// (increment, then jump). One dispatch, two instructions for tick
    /// accounting: the op ticks, injects, and stores, then the branch
    /// ticks and takes the edge.
    IBinBr {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
        edge: u32,
    },
    /// A float binary op immediately consumed by the next instruction,
    /// a `store` of its result: one dispatch, two instructions for tick
    /// accounting. The (possibly flipped) result still stores to `dst`
    /// — it may have other users — and that same image is what the
    /// store writes to memory.
    FBinStore {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        site: InstId,
        /// The folded `store`'s own [`InstId`] (store-class site).
        store_site: InstId,
        addr: u32,
    },
    /// `sitofp`.
    CastSitofp {
        arg: u32,
        dst: u32,
        site: InstId,
    },
    /// `fptosi` (saturating, like the reference).
    CastFptosi {
        arg: u32,
        dst: u32,
        site: InstId,
    },
    /// `trunc` to bool: masks to the canonical single bit.
    CastTrunc {
        arg: u32,
        dst: u32,
        site: InstId,
    },
    /// Casts that are the identity on register images: `zext` (of a
    /// canonical bool), `bitcast`, `ptrtoint`, `inttoptr`. Still an
    /// eligible injection site of width 64.
    CastId {
        arg: u32,
        dst: u32,
        site: InstId,
    },
    Select {
        cond: u32,
        then_v: u32,
        else_v: u32,
        dst: u32,
        site: InstId,
        /// Static bit width of the selected type.
        width: u32,
    },
    Alloca {
        bytes: i64,
        dst: u32,
    },
    Load {
        addr: u32,
        dst: u32,
        site: InstId,
        /// `1` for bool loads (canonicalizes, like the reference's
        /// `from_bits`), all-ones otherwise.
        mask: u64,
    },
    Store {
        value: u32,
        addr: u32,
        site: InstId,
    },
    Gep {
        base: u32,
        index: u32,
        dst: u32,
        site: InstId,
    },
    /// `gep` whose index is a compile-time constant: the byte offset is
    /// folded. Lowering only folds when `index * 8` does not overflow
    /// (otherwise the generic [`CInst::Gep`] runs and poisons the
    /// address), so `offset` is always exact.
    GepConst {
        base: u32,
        offset: i64,
        dst: u32,
        site: InstId,
    },
    /// A `gep` immediately consumed by the next instruction, a `load`
    /// from its result: one dispatch, two instructions for tick
    /// accounting. The address still stores to `gep_dst` (it is an
    /// eligible injection site and may have other users), and the load
    /// reads the possibly-flipped address.
    GepLoad {
        base: u32,
        index: u32,
        gep_dst: u32,
        site: InstId,
        /// The folded `load`'s own [`InstId`] (load-class site).
        load_site: InstId,
        load_dst: u32,
        mask: u64,
    },
    /// Constant-index [`CInst::GepLoad`].
    GepConstLoad {
        base: u32,
        offset: i64,
        gep_dst: u32,
        site: InstId,
        /// The folded `load`'s own [`InstId`] (load-class site).
        load_site: InstId,
        load_dst: u32,
        mask: u64,
    },
    /// A `gep` immediately consumed by the next instruction, a `store`
    /// through its result — fused like [`CInst::GepLoad`]. The address
    /// is written to `gep_dst` *before* the value operand is read, in
    /// case the stored value is the address itself.
    GepStore {
        base: u32,
        index: u32,
        gep_dst: u32,
        site: InstId,
        /// The folded `store`'s own [`InstId`] (store-class site).
        store_site: InstId,
        value: u32,
    },
    /// Constant-index [`CInst::GepStore`].
    GepConstStore {
        base: u32,
        offset: i64,
        gep_dst: u32,
        site: InstId,
        /// The folded `store`'s own [`InstId`] (store-class site).
        store_site: InstId,
        value: u32,
    },
    Call {
        callee: CCallee,
        args: Box<[u32]>,
        /// `NO_SLOT` for void calls (which are also ineligible
        /// injection sites, mirroring [`is_fault_site`]).
        dst: u32,
        site: InstId,
        /// Static bit width of the return type (unused for void calls).
        width: u32,
    },
    Br {
        edge: u32,
    },
    CondBr {
        cond: u32,
        site: InstId,
        then_edge: u32,
        else_edge: u32,
    },
    Ret {
        value: Option<u32>,
    },
}

/// One flattened function.
#[derive(Clone, Debug)]
struct CompiledFunction {
    /// Original function id (for injection-site reporting).
    fid: FuncId,
    /// Parameter types (entry-point validation).
    params: Vec<Type>,
    /// Return type (rebuilds the entry's typed return value).
    ret_ty: Type,
    /// Frame size in slots: parameters, then one slot per
    /// value-producing instruction in layout order, then the constant
    /// pool.
    frame_slots: u32,
    /// Interned constant register images, copied into the frame tail
    /// (`frame_slots - consts.len() ..`) on every frame push.
    consts: Vec<u64>,
    /// Dense instruction array, phis removed, block-layout order.
    code: Vec<CInst>,
    /// CFG edges referenced by `Br`/`CondBr`.
    edges: Vec<Edge>,
}

/// A module lowered for the pre-decoded engine. Compile once per
/// workload (the lowering walks every instruction), then run any number
/// of [`CompiledMachine`]s against it — the program is immutable and
/// `Sync`, so campaign worker threads share one copy.
#[derive(Debug)]
pub struct CompiledProgram {
    funcs: Vec<CompiledFunction>,
    /// Entry lookup only (never iterated — determinism-safe).
    by_name: HashMap<String, FuncId>,
}

impl CompiledProgram {
    /// Lowers `module` (assumed verified, like [`crate::Machine::new`])
    /// into dense per-function instruction arrays.
    pub fn compile(module: &Module) -> Self {
        let mut funcs = Vec::with_capacity(module.num_functions());
        let mut by_name = HashMap::with_capacity(module.num_functions());
        for (fid, func) in module.functions() {
            by_name.insert(func.name().to_string(), fid);
            funcs.push(compile_function(fid, func));
        }
        CompiledProgram { funcs, by_name }
    }

    /// Number of lowered functions.
    pub fn num_functions(&self) -> usize {
        self.funcs.len()
    }
}

/// Converts an IR constant to its runtime register image (the bits of
/// the reference's `eval` on `Value::Const`).
fn const_bits(c: Constant) -> u64 {
    match c {
        Constant::I64(x) => x as u64,
        Constant::F64Bits(b) => b,
        Constant::Bool(b) => b as u64,
        Constant::Null => 0,
    }
}

/// Slot resolution during lowering: SSA results and parameters map
/// through `slot_of`, constants intern into the frame-tail pool.
struct SlotMap<'f> {
    slot_of: &'f [u32],
    /// First slot of the constant pool (params + results).
    pool_base: u32,
    pool: Vec<u64>,
    interned: HashMap<u64, u32>,
}

impl SlotMap<'_> {
    fn opnd(&mut self, v: Value) -> u32 {
        match v {
            Value::Inst(id) => {
                let slot = self.slot_of[id.index()];
                debug_assert_ne!(slot, NO_SLOT, "use of a void instruction's value");
                slot
            }
            Value::Param(n) => n,
            Value::Const(c) => {
                let bits = const_bits(c);
                match self.interned.get(&bits) {
                    Some(&slot) => slot,
                    None => {
                        let slot = self.pool_base + self.pool.len() as u32;
                        self.pool.push(bits);
                        self.interned.insert(bits, slot);
                        slot
                    }
                }
            }
        }
    }
}

/// Builds the phi move-list for the edge `pred -> succ`.
fn lower_edge(
    func: &Function,
    slots: &mut SlotMap<'_>,
    block_pc: &[u32],
    edges: &mut Vec<Edge>,
    pred: BlockId,
    succ: BlockId,
) -> u32 {
    let mut moves = Vec::new();
    for &id in func.block(succ).insts() {
        match func.inst(id) {
            Inst::Phi { incomings, .. } => {
                let (_, v) = incomings
                    .iter()
                    .find(|(p, _)| *p == pred)
                    .expect("verified phi has an incoming per predecessor");
                moves.push((slots.slot_of[id.index()], slots.opnd(*v)));
            }
            _ => break,
        }
    }
    edges.push(Edge {
        target: block_pc[succ.index()],
        moves: moves.into_boxed_slice(),
    });
    (edges.len() - 1) as u32
}

/// True when `insts[k]` is directly consumed-by-successor fusable with
/// `insts[k - 1]`: a `condbr` branching on the preceding `icmp`/`fcmp`
/// ([`CInst::IcmpBr`]/[`CInst::FcmpBr`]) or a `load`/`store` addressing
/// through the preceding `gep` ([`CInst::GepLoad`] and friends). Both
/// lowering passes use this single predicate, so instruction indices
/// stay consistent.
/// Address computation for the pre-folded `GepConst*` variants. The
/// byte offset is exact (lowering refuses to fold an overflowing
/// `index * 8`), so this matches [`gep_addr`] bit for bit on the same
/// operands — only base-plus-offset overflow remains to poison.
#[inline]
fn gep_const_addr(base: u64, offset: i64) -> u64 {
    base.checked_add_signed(offset).unwrap_or(POISON_ADDR)
}

fn fuses_with_prev(func: &Function, insts: &[InstId], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let prev = insts[k - 1];
    match func.inst(insts[k]) {
        Inst::CondBr {
            cond: Value::Inst(c),
            ..
        } => *c == prev && matches!(func.inst(prev), Inst::Icmp { .. } | Inst::Fcmp { .. }),
        Inst::Load {
            addr: Value::Inst(a),
            ..
        } => *a == prev && matches!(func.inst(prev), Inst::Gep { .. }),
        Inst::Store { addr, value, .. } => {
            if let Value::Inst(a) = addr {
                if *a == prev && matches!(func.inst(prev), Inst::Gep { .. }) {
                    return true;
                }
            }
            if let Value::Inst(v) = value {
                return *v == prev && matches!(func.inst(prev), Inst::Binary { ty: Type::F64, .. });
            }
            false
        }
        // Loop back-edges: `add` (any non-trapping integer op) feeding
        // straight into an unconditional `br`.
        Inst::Br { .. } => matches!(
            func.inst(prev),
            Inst::Binary { ty, op, .. }
                if *ty != Type::F64
                    && *ty != Type::Bool
                    && !matches!(op, BinOp::Sdiv | BinOp::Srem)
        ),
        _ => false,
    }
}

fn compile_function(fid: FuncId, func: &Function) -> CompiledFunction {
    let nparams = func.params().len() as u32;

    // Frame layout: parameters in slots 0..nparams, then one slot per
    // linked value-producing instruction in block-layout order, then
    // the interned constant pool.
    let mut slot_of: Vec<u32> = vec![NO_SLOT; func.num_inst_slots()];
    let mut next_slot = nparams;
    // Instruction index of each block's first non-phi instruction.
    let mut block_pc = vec![0u32; func.num_blocks()];
    let mut pc = 0u32;
    for bb in func.block_ids() {
        block_pc[bb.index()] = pc;
        let insts = func.block(bb).insts();
        for (k, &id) in insts.iter().enumerate() {
            let inst = func.inst(id);
            if inst.has_result() {
                slot_of[id.index()] = next_slot;
                next_slot += 1;
            }
            // Fused condbrs ride in the preceding compare's slot.
            if !inst.is_phi() && !fuses_with_prev(func, insts, k) {
                pc += 1;
            }
        }
    }

    let mut slots = SlotMap {
        slot_of: &slot_of,
        pool_base: next_slot,
        pool: Vec::new(),
        interned: HashMap::new(),
    };
    let mut code = Vec::with_capacity(pc as usize);
    let mut edges = Vec::new();
    for bb in func.block_ids() {
        let insts = func.block(bb).insts();
        for (k, &id) in insts.iter().enumerate() {
            let inst = func.inst(id);
            let dst = slot_of[id.index()];
            if fuses_with_prev(func, insts, k) {
                continue; // folded into the fused instruction just emitted
            }
            let cinst = match inst {
                Inst::Phi { .. } => continue, // consumed by edge move-lists
                Inst::Binary {
                    op, ty, lhs, rhs, ..
                } => {
                    let (lhs, rhs) = (slots.opnd(*lhs), slots.opnd(*rhs));
                    let fused_next = (k + 1 < insts.len() && fuses_with_prev(func, insts, k + 1))
                        .then(|| func.inst(insts[k + 1]));
                    match (ty, fused_next) {
                        (Type::F64, Some(Inst::Store { addr, .. })) => CInst::FBinStore {
                            op: *op,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                            store_site: insts[k + 1],
                            addr: slots.opnd(*addr),
                        },
                        (Type::F64, _) => CInst::FBin {
                            op: *op,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        },
                        (Type::Bool, _) => CInst::BBin {
                            op: *op,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        },
                        _ if matches!(op, BinOp::Sdiv | BinOp::Srem) => CInst::IDiv {
                            rem: *op == BinOp::Srem,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        },
                        (_, Some(Inst::Br { target })) => CInst::IBinBr {
                            op: *op,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                            edge: lower_edge(func, &mut slots, &block_pc, &mut edges, bb, *target),
                        },
                        (_, Some(_)) => {
                            unreachable!("integer binary only fuses with br")
                        }
                        _ => CInst::IBin {
                            op: *op,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        },
                    }
                }
                Inst::Icmp { pred, lhs, rhs } => {
                    let (lhs, rhs) = (slots.opnd(*lhs), slots.opnd(*rhs));
                    if k + 1 < insts.len() && fuses_with_prev(func, insts, k + 1) {
                        let Inst::CondBr {
                            then_bb, else_bb, ..
                        } = func.inst(insts[k + 1])
                        else {
                            unreachable!("fuses_with_prev only matches condbr")
                        };
                        CInst::IcmpBr {
                            pred: *pred,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                            br_site: insts[k + 1],
                            then_edge: lower_edge(
                                func, &mut slots, &block_pc, &mut edges, bb, *then_bb,
                            ),
                            else_edge: lower_edge(
                                func, &mut slots, &block_pc, &mut edges, bb, *else_bb,
                            ),
                        }
                    } else {
                        CInst::Icmp {
                            pred: *pred,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        }
                    }
                }
                Inst::Fcmp { pred, lhs, rhs } => {
                    let (lhs, rhs) = (slots.opnd(*lhs), slots.opnd(*rhs));
                    if k + 1 < insts.len() && fuses_with_prev(func, insts, k + 1) {
                        let Inst::CondBr {
                            then_bb, else_bb, ..
                        } = func.inst(insts[k + 1])
                        else {
                            unreachable!("fuses_with_prev only matches condbr")
                        };
                        CInst::FcmpBr {
                            pred: *pred,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                            br_site: insts[k + 1],
                            then_edge: lower_edge(
                                func, &mut slots, &block_pc, &mut edges, bb, *then_bb,
                            ),
                            else_edge: lower_edge(
                                func, &mut slots, &block_pc, &mut edges, bb, *else_bb,
                            ),
                        }
                    } else {
                        CInst::Fcmp {
                            pred: *pred,
                            lhs,
                            rhs,
                            dst,
                            site: id,
                        }
                    }
                }
                Inst::Cast { op, arg, .. } => {
                    let arg = slots.opnd(*arg);
                    match op {
                        CastOp::Sitofp => CInst::CastSitofp { arg, dst, site: id },
                        CastOp::Fptosi => CInst::CastFptosi { arg, dst, site: id },
                        CastOp::Trunc => CInst::CastTrunc { arg, dst, site: id },
                        CastOp::Zext | CastOp::Bitcast | CastOp::Ptrtoint | CastOp::Inttoptr => {
                            CInst::CastId { arg, dst, site: id }
                        }
                    }
                }
                Inst::Select {
                    cond,
                    then_value,
                    else_value,
                    ..
                } => CInst::Select {
                    cond: slots.opnd(*cond),
                    then_v: slots.opnd(*then_value),
                    else_v: slots.opnd(*else_value),
                    dst,
                    site: id,
                    width: inst.result_type().bit_width().max(1),
                },
                Inst::Alloca { count, .. } => CInst::Alloca {
                    bytes: (*count as i64) * 8,
                    dst,
                },
                Inst::Load { ty, addr } => CInst::Load {
                    addr: slots.opnd(*addr),
                    dst,
                    site: id,
                    mask: if *ty == Type::Bool { 1 } else { u64::MAX },
                },
                Inst::Store { value, addr, .. } => CInst::Store {
                    value: slots.opnd(*value),
                    addr: slots.opnd(*addr),
                    site: id,
                },
                Inst::Gep { base, index, .. } => {
                    let base = slots.opnd(*base);
                    let fused_next = (k + 1 < insts.len() && fuses_with_prev(func, insts, k + 1))
                        .then(|| func.inst(insts[k + 1]));
                    // Only fold constant indices whose byte offset is
                    // exact; an overflowing `index * 8` takes the
                    // generic path and poisons the address at run time.
                    let const_off = match index {
                        Value::Const(Constant::I64(i)) => i.checked_mul(8),
                        _ => None,
                    };
                    match (const_off, fused_next) {
                        (Some(offset), None) => CInst::GepConst {
                            base,
                            offset,
                            dst,
                            site: id,
                        },
                        (None, None) => CInst::Gep {
                            base,
                            index: slots.opnd(*index),
                            dst,
                            site: id,
                        },
                        (Some(offset), Some(Inst::Load { ty, .. })) => CInst::GepConstLoad {
                            base,
                            offset,
                            gep_dst: dst,
                            site: id,
                            load_site: insts[k + 1],
                            load_dst: slot_of[insts[k + 1].index()],
                            mask: if *ty == Type::Bool { 1 } else { u64::MAX },
                        },
                        (None, Some(Inst::Load { ty, .. })) => CInst::GepLoad {
                            base,
                            index: slots.opnd(*index),
                            gep_dst: dst,
                            site: id,
                            load_site: insts[k + 1],
                            load_dst: slot_of[insts[k + 1].index()],
                            mask: if *ty == Type::Bool { 1 } else { u64::MAX },
                        },
                        (Some(offset), Some(Inst::Store { value, .. })) => CInst::GepConstStore {
                            base,
                            offset,
                            gep_dst: dst,
                            site: id,
                            store_site: insts[k + 1],
                            value: slots.opnd(*value),
                        },
                        (None, Some(Inst::Store { value, .. })) => CInst::GepStore {
                            base,
                            index: slots.opnd(*index),
                            gep_dst: dst,
                            site: id,
                            store_site: insts[k + 1],
                            value: slots.opnd(*value),
                        },
                        (_, Some(_)) => unreachable!("gep only fuses with load/store"),
                    }
                }
                Inst::Call { callee, args, .. } => {
                    debug_assert_eq!(dst != NO_SLOT, is_fault_site(inst));
                    CInst::Call {
                        callee: match callee {
                            Callee::Func(f) => CCallee::Func(*f),
                            Callee::Intrinsic(i) => {
                                debug_assert!(
                                    args.len() <= INTRINSIC_MAX_ARGS,
                                    "intrinsic arity grew past the argument buffer"
                                );
                                CCallee::Intrinsic(*i)
                            }
                        },
                        args: args.iter().map(|a| slots.opnd(*a)).collect(),
                        dst,
                        site: id,
                        width: inst.result_type().bit_width().max(1),
                    }
                }
                Inst::Br { target } => CInst::Br {
                    edge: lower_edge(func, &mut slots, &block_pc, &mut edges, bb, *target),
                },
                Inst::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => CInst::CondBr {
                    cond: slots.opnd(*cond),
                    site: id,
                    then_edge: lower_edge(func, &mut slots, &block_pc, &mut edges, bb, *then_bb),
                    else_edge: lower_edge(func, &mut slots, &block_pc, &mut edges, bb, *else_bb),
                },
                Inst::Ret { value } => CInst::Ret {
                    value: value.map(|v| slots.opnd(v)),
                },
            };
            code.push(cinst);
        }
    }

    CompiledFunction {
        fid,
        params: func.params().to_vec(),
        ret_ty: func.return_type(),
        frame_slots: next_slot + slots.pool.len() as u32,
        consts: slots.pool,
        code,
        edges,
    }
}

/// Largest intrinsic arity (checked at compile time); lets the hot loop
/// gather intrinsic arguments into a stack buffer instead of a `Vec`.
const INTRINSIC_MAX_ARGS: usize = 4;

/// A resettable executor for one [`CompiledProgram`].
///
/// The machine keeps its value stack, alloca list, phi scratch buffer,
/// and [`Memory`] between runs: [`CompiledMachine::run`] resets them
/// without releasing their allocations, so campaign loops stop paying
/// per-run setup. One machine per worker thread is the intended
/// campaign topology (the program itself is shared).
#[derive(Debug)]
pub struct CompiledMachine<'p> {
    prog: &'p CompiledProgram,
    /// One contiguous stack of 64-bit register images; each call owns
    /// the window `[frame_base, frame_base + frame_slots)`.
    stack: Vec<u64>,
    /// Alloca base addresses of all live frames; each frame records a
    /// watermark and frees its suffix on exit.
    allocas: Vec<u64>,
    /// Parallel-copy staging for phi edges.
    scratch: Vec<u64>,
    /// Recycled across runs via [`Memory::reset`].
    memory: Memory,
}

impl<'p> CompiledMachine<'p> {
    /// Creates a machine executing `program`.
    pub fn new(program: &'p CompiledProgram) -> Self {
        CompiledMachine {
            prog: program,
            stack: Vec::new(),
            allocas: Vec::new(),
            scratch: Vec::new(),
            memory: Memory::new(),
        }
    }

    /// Runs under the serial environment. Same contract as
    /// [`crate::Machine::run`]; the machine is reset first, so a
    /// previous panicking or aborted run cannot leak state.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the entry function does not exist or
    /// the argument count/types mismatch, with the same messages as the
    /// reference engine.
    pub fn run(&mut self, config: &RunConfig) -> Result<RunOutput, RunError> {
        let mut env = SerialEnv;
        self.run_with_env(config, &mut env)
    }

    /// Runs under a caller-provided environment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledMachine::run`].
    pub fn run_with_env(
        &mut self,
        config: &RunConfig,
        env: &mut dyn Env,
    ) -> Result<RunOutput, RunError> {
        let entry = *self
            .prog
            .by_name
            .get(&config.entry)
            .ok_or_else(|| no_such_function(&config.entry))?;
        let f = &self.prog.funcs[entry.index()];
        validate_entry(&config.entry, &f.params, config)?;
        let frame_slots = f.frame_slots as usize;
        let ret_ty = f.ret_ty;

        // Reset without releasing capacity.
        self.stack.clear();
        self.allocas.clear();
        self.scratch.clear();
        let mut memory = std::mem::take(&mut self.memory);
        memory.reset();

        let mut state = RunState::start(memory, config, env);
        self.stack.resize(frame_slots, 0);
        for (k, a) in config.args.iter().enumerate() {
            self.stack[k] = a.bits();
        }
        self.stack[frame_slots - f.consts.len()..].copy_from_slice(&f.consts);
        let result = self
            .exec_func(&mut state, entry, 0, 0)
            .map(|ret| ret.map(|bits| RtVal::from_bits(ret_ty, bits)));
        let status = state.finish(result);
        let (output, memory) = state.into_output(status);
        self.memory = memory;
        Ok(output)
    }

    /// Executes one frame (already pushed at `base`), freeing its
    /// allocas on every exit path like the reference engine.
    fn exec_func(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        base: usize,
        depth: usize,
    ) -> Result<Option<u64>, Stop> {
        if depth >= MAX_CALL_DEPTH {
            return Err(Stop::Trap(Trap::StackOverflow));
        }
        let alloca_mark = self.allocas.len();
        let result = self.run_frame(state, fid, base, depth);
        for i in alloca_mark..self.allocas.len() {
            // Frame regions are always valid bases; ignore double-free
            // that can only arise from user `free` of an alloca pointer.
            let _ = state.memory.free(self.allocas[i]);
        }
        self.allocas.truncate(alloca_mark);
        result
    }

    #[inline]
    fn read(&self, base: usize, slot: u32) -> u64 {
        self.stack[base + slot as usize]
    }

    #[inline]
    fn write(&mut self, base: usize, dst: u32, bits: u64) {
        self.stack[base + dst as usize] = bits;
    }

    /// Takes a CFG edge: charges its phi moves against `dynamic_insts`
    /// (no budget/poll check — block-entry phi copies are exempt in the
    /// reference too) and performs the parallel copy.
    #[inline]
    fn take_edge(
        &mut self,
        hot: &mut HotCounters,
        edges: &[Edge],
        base: usize,
        edge: u32,
    ) -> usize {
        let e = &edges[edge as usize];
        hot.dynamic_insts += e.moves.len() as u64;
        match *e.moves {
            [] => {}
            [(dst, src)] => {
                let v = self.read(base, src);
                self.write(base, dst, v);
            }
            [(d0, s0), (d1, s1)] => {
                // Parallel copy: read every source before any write.
                let v0 = self.read(base, s0);
                let v1 = self.read(base, s1);
                self.write(base, d0, v0);
                self.write(base, d1, v1);
            }
            _ => {
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                scratch.extend(e.moves.iter().map(|&(_, src)| self.read(base, src)));
                for (k, &(dst, _)) in e.moves.iter().enumerate() {
                    self.write(base, dst, scratch[k]);
                }
                self.scratch = scratch;
            }
        }
        e.target as usize
    }

    fn run_frame(
        &mut self,
        state: &mut RunState<'_>,
        fid: FuncId,
        base: usize,
        depth: usize,
    ) -> Result<Option<u64>, Stop> {
        // The counters live in registers for the duration of the frame;
        // every exit edge below flushes them back (idempotently).
        let mut hot = HotCounters::load(state);
        let result = self.frame_loop(state, &mut hot, fid, base, depth);
        hot.flush(state);
        result
    }

    fn frame_loop(
        &mut self,
        state: &mut RunState<'_>,
        hot: &mut HotCounters,
        fid: FuncId,
        base: usize,
        depth: usize,
    ) -> Result<Option<u64>, Stop> {
        // `prog` outlives `self`'s borrow, so the code array can be held
        // across stack mutations.
        let prog = self.prog;
        let f = &prog.funcs[fid.index()];
        let mut pc = 0usize;
        loop {
            let inst = &f.code[pc];
            pc += 1;
            hot.tick(state)?;
            match inst {
                CInst::IBin {
                    op,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = self.read(base, *lhs) as i64;
                    let b = self.read(base, *rhs) as i64;
                    use BinOp::*;
                    let v = match op {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        And => a & b,
                        Or => a | b,
                        Xor => a ^ b,
                        Shl => a.wrapping_shl((b & 63) as u32),
                        Lshr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
                        Ashr => a.wrapping_shr((b & 63) as u32),
                        _ => unreachable!("lowering routes div/rem/float/bool elsewhere"),
                    };
                    let bits = hot.inject(state, f.fid, *site, W64, v as u64);
                    self.write(base, *dst, bits);
                }
                CInst::IBinBr {
                    op,
                    lhs,
                    rhs,
                    dst,
                    site,
                    edge,
                } => {
                    let a = self.read(base, *lhs) as i64;
                    let b = self.read(base, *rhs) as i64;
                    use BinOp::*;
                    let v = match op {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        And => a & b,
                        Or => a | b,
                        Xor => a ^ b,
                        Shl => a.wrapping_shl((b & 63) as u32),
                        Lshr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
                        Ashr => a.wrapping_shr((b & 63) as u32),
                        _ => unreachable!("lowering routes div/rem/float/bool elsewhere"),
                    };
                    let bits = hot.inject(state, f.fid, *site, W64, v as u64);
                    self.write(base, *dst, bits);
                    // The folded br is still its own instruction.
                    hot.tick(state)?;
                    pc = self.take_edge(hot, &f.edges, base, *edge);
                }
                CInst::IDiv {
                    rem,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = self.read(base, *lhs) as i64;
                    let b = self.read(base, *rhs) as i64;
                    if b == 0 {
                        return Err(Stop::Trap(Trap::DivByZero));
                    }
                    if a == i64::MIN && b == -1 {
                        return Err(Stop::Trap(Trap::DivOverflow));
                    }
                    let v = if *rem { a % b } else { a / b };
                    let bits = hot.inject(state, f.fid, *site, W64, v as u64);
                    self.write(base, *dst, bits);
                }
                CInst::FBin {
                    op,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = f64::from_bits(self.read(base, *lhs));
                    let b = f64::from_bits(self.read(base, *rhs));
                    use BinOp::*;
                    let v = match op {
                        Fadd => a + b,
                        Fsub => a - b,
                        Fmul => a * b,
                        Fdiv => a / b,
                        Frem => a % b,
                        _ => unreachable!("lowering routes integer ops elsewhere"),
                    };
                    let bits = hot.inject(state, f.fid, *site, W64, v.to_bits());
                    self.write(base, *dst, bits);
                }
                CInst::FBinStore {
                    op,
                    lhs,
                    rhs,
                    dst,
                    site,
                    store_site,
                    addr,
                } => {
                    let a = f64::from_bits(self.read(base, *lhs));
                    let b = f64::from_bits(self.read(base, *rhs));
                    use BinOp::*;
                    let v = match op {
                        Fadd => a + b,
                        Fsub => a - b,
                        Fmul => a * b,
                        Fdiv => a / b,
                        Frem => a % b,
                        _ => unreachable!("lowering routes integer ops elsewhere"),
                    };
                    let bits = hot.inject(state, f.fid, *site, W64, v.to_bits());
                    self.write(base, *dst, bits);
                    // The folded store is still its own instruction; it
                    // writes the possibly-flipped image just produced.
                    hot.tick(state)?;
                    let a = self.read(base, *addr);
                    let stored = hot.store_bits(state, f.fid, *store_site, bits);
                    state.memory.store(a, stored).map_err(Stop::Trap)?;
                }
                CInst::BBin {
                    op,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = self.read(base, *lhs);
                    let b = self.read(base, *rhs);
                    let v = match op {
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        _ => unreachable!("verifier restricts bool binaries to bitwise"),
                    };
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                }
                CInst::Icmp {
                    pred,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = self.read(base, *lhs) as i64;
                    let b = self.read(base, *rhs) as i64;
                    let v = pred.eval(a, b) as u64;
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                }
                CInst::Fcmp {
                    pred,
                    lhs,
                    rhs,
                    dst,
                    site,
                } => {
                    let a = f64::from_bits(self.read(base, *lhs));
                    let b = f64::from_bits(self.read(base, *rhs));
                    let v = pred.eval(a, b) as u64;
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                }
                CInst::IcmpBr {
                    pred,
                    lhs,
                    rhs,
                    dst,
                    site,
                    br_site,
                    then_edge,
                    else_edge,
                } => {
                    let a = self.read(base, *lhs) as i64;
                    let b = self.read(base, *rhs) as i64;
                    let v = pred.eval(a, b) as u64;
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                    // The folded condbr is still its own instruction.
                    hot.tick(state)?;
                    let taken = hot.branch_edge(state, f.fid, *br_site, bits != 0);
                    let edge = if taken { *then_edge } else { *else_edge };
                    pc = self.take_edge(hot, &f.edges, base, edge);
                }
                CInst::FcmpBr {
                    pred,
                    lhs,
                    rhs,
                    dst,
                    site,
                    br_site,
                    then_edge,
                    else_edge,
                } => {
                    let a = f64::from_bits(self.read(base, *lhs));
                    let b = f64::from_bits(self.read(base, *rhs));
                    let v = pred.eval(a, b) as u64;
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                    hot.tick(state)?;
                    let taken = hot.branch_edge(state, f.fid, *br_site, bits != 0);
                    let edge = if taken { *then_edge } else { *else_edge };
                    pc = self.take_edge(hot, &f.edges, base, edge);
                }
                CInst::CastSitofp { arg, dst, site } => {
                    let v = ((self.read(base, *arg) as i64) as f64).to_bits();
                    let bits = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *dst, bits);
                }
                CInst::CastFptosi { arg, dst, site } => {
                    let v = saturating_f64_to_i64(f64::from_bits(self.read(base, *arg))) as u64;
                    let bits = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *dst, bits);
                }
                CInst::CastTrunc { arg, dst, site } => {
                    let v = self.read(base, *arg) & 1;
                    let bits = hot.inject(state, f.fid, *site, W1, v);
                    self.write(base, *dst, bits);
                }
                CInst::CastId { arg, dst, site } => {
                    let v = self.read(base, *arg);
                    let bits = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *dst, bits);
                }
                CInst::Select {
                    cond,
                    then_v,
                    else_v,
                    dst,
                    site,
                    width,
                } => {
                    let c = self.read(base, *cond) != 0;
                    let v = self.read(base, if c { *then_v } else { *else_v });
                    let bits = hot.inject(state, f.fid, *site, *width, v);
                    self.write(base, *dst, bits);
                }
                CInst::Alloca { bytes, dst } => {
                    let p = state.memory.alloc(*bytes).map_err(Stop::Trap)?;
                    self.allocas.push(p);
                    self.write(base, *dst, p);
                }
                CInst::Load {
                    addr,
                    dst,
                    site,
                    mask,
                } => {
                    let a = self.read(base, *addr);
                    let bits = state.memory.load(a).map_err(Stop::Trap)?;
                    let bits = hot.load_bits(state, f.fid, *site, bits);
                    self.write(base, *dst, bits & mask);
                }
                CInst::Store { value, addr, site } => {
                    let v = self.read(base, *value);
                    let v = hot.store_bits(state, f.fid, *site, v);
                    let a = self.read(base, *addr);
                    state.memory.store(a, v).map_err(Stop::Trap)?;
                }
                CInst::Gep {
                    base: b,
                    index,
                    dst,
                    site,
                } => {
                    let p = self.read(base, *b);
                    let i = self.read(base, *index);
                    let v = gep_addr(p, i as i64);
                    let bits = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *dst, bits);
                }
                CInst::GepConst {
                    base: b,
                    offset,
                    dst,
                    site,
                } => {
                    let v = gep_const_addr(self.read(base, *b), *offset);
                    let bits = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *dst, bits);
                }
                CInst::GepLoad {
                    base: b,
                    index,
                    gep_dst,
                    site,
                    load_site,
                    load_dst,
                    mask,
                } => {
                    let p = self.read(base, *b);
                    let i = self.read(base, *index);
                    let v = gep_addr(p, i as i64);
                    let addr = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *gep_dst, addr);
                    // The folded load is still its own instruction.
                    hot.tick(state)?;
                    let bits = state.memory.load(addr).map_err(Stop::Trap)?;
                    let bits = hot.load_bits(state, f.fid, *load_site, bits);
                    self.write(base, *load_dst, bits & mask);
                }
                CInst::GepConstLoad {
                    base: b,
                    offset,
                    gep_dst,
                    site,
                    load_site,
                    load_dst,
                    mask,
                } => {
                    let v = gep_const_addr(self.read(base, *b), *offset);
                    let addr = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *gep_dst, addr);
                    hot.tick(state)?;
                    let bits = state.memory.load(addr).map_err(Stop::Trap)?;
                    let bits = hot.load_bits(state, f.fid, *load_site, bits);
                    self.write(base, *load_dst, bits & mask);
                }
                CInst::GepStore {
                    base: b,
                    index,
                    gep_dst,
                    site,
                    store_site,
                    value,
                } => {
                    let p = self.read(base, *b);
                    let i = self.read(base, *index);
                    let v = gep_addr(p, i as i64);
                    let addr = hot.inject(state, f.fid, *site, W64, v);
                    // Address lands in its slot before the value is
                    // read: the stored value may be the address itself.
                    self.write(base, *gep_dst, addr);
                    hot.tick(state)?;
                    let val = self.read(base, *value);
                    let val = hot.store_bits(state, f.fid, *store_site, val);
                    state.memory.store(addr, val).map_err(Stop::Trap)?;
                }
                CInst::GepConstStore {
                    base: b,
                    offset,
                    gep_dst,
                    site,
                    store_site,
                    value,
                } => {
                    let v = gep_const_addr(self.read(base, *b), *offset);
                    let addr = hot.inject(state, f.fid, *site, W64, v);
                    self.write(base, *gep_dst, addr);
                    hot.tick(state)?;
                    let val = self.read(base, *value);
                    let val = hot.store_bits(state, f.fid, *store_site, val);
                    state.memory.store(addr, val).map_err(Stop::Trap)?;
                }
                CInst::Call {
                    callee,
                    args,
                    dst,
                    site,
                    width,
                } => {
                    let v = match callee {
                        CCallee::Func(callee_fid) => {
                            // Push the callee frame, writing evaluated
                            // arguments and the callee's constant pool
                            // straight into its slots.
                            let callee_f = &prog.funcs[callee_fid.index()];
                            let callee_slots = callee_f.frame_slots as usize;
                            let callee_base = self.stack.len();
                            self.stack.resize(callee_base + callee_slots, 0);
                            for (k, a) in args.iter().enumerate() {
                                let v = self.read(base, *a);
                                self.stack[callee_base + k] = v;
                            }
                            self.stack[callee_base + callee_slots - callee_f.consts.len()..]
                                .copy_from_slice(&callee_f.consts);
                            // The callee frame runs on its own counter
                            // image; hand ours over and take theirs back.
                            hot.flush(state);
                            let r = self.exec_func(state, *callee_fid, callee_base, depth + 1);
                            *hot = HotCounters::load(state);
                            self.stack.truncate(callee_base);
                            r?.unwrap_or(0)
                        }
                        CCallee::Intrinsic(intr) => {
                            // Intrinsics are the shared typed implementation:
                            // rebuild RtVal arguments from their static
                            // parameter types (canonical images make this
                            // exact).
                            let ptys = intr.param_types();
                            let mut vals = [RtVal::Unit; INTRINSIC_MAX_ARGS];
                            for (k, a) in args.iter().enumerate() {
                                vals[k] = RtVal::from_bits(ptys[k], self.read(base, *a));
                            }
                            exec_intrinsic(state, *intr, &vals[..args.len()])?.bits()
                        }
                    };
                    if *dst != NO_SLOT {
                        let bits = hot.inject(state, f.fid, *site, *width, v);
                        self.write(base, *dst, bits);
                    }
                }
                CInst::Br { edge } => {
                    pc = self.take_edge(hot, &f.edges, base, *edge);
                }
                CInst::CondBr {
                    cond,
                    site,
                    then_edge,
                    else_edge,
                } => {
                    let c = self.read(base, *cond) != 0;
                    let c = hot.branch_edge(state, f.fid, *site, c);
                    let edge = if c { *then_edge } else { *else_edge };
                    pc = self.take_edge(hot, &f.edges, base, edge);
                }
                CInst::Ret { value } => {
                    return Ok(value.map(|v| self.read(base, v)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{maybe_inject, FaultModel, Injection, Machine, RunStatus, SiteClass};
    use ipas_ir::parser::parse_module;
    use std::time::Duration;

    fn both(src: &str, config: &RunConfig) -> (RunOutput, RunOutput) {
        let module = parse_module(src).unwrap();
        ipas_ir::verify::verify_module(&module).unwrap();
        let reference = Machine::new(&module).run(config).unwrap();
        let prog = CompiledProgram::compile(&module);
        let compiled = CompiledMachine::new(&prog).run(config).unwrap();
        (reference, compiled)
    }

    fn assert_identical(a: &RunOutput, b: &RunOutput) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.dynamic_insts, b.dynamic_insts);
        assert_eq!(a.eligible_results, b.eligible_results);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.stores, b.stores);
        assert_eq!(a.cond_branches, b.cond_branches);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.console, b.console);
        assert_eq!(a.injected_site, b.injected_site);
        assert_eq!(a.injected_at_inst, b.injected_at_inst);
    }

    const LOOP_SRC: &str = r#"
fn @main() -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v3]
  %v1 = phi i64 [bb0: 0, bb2: %v4]
  %v2 = icmp slt %v0, 10
  condbr %v2, bb2, bb3
bb2:
  %v4 = add i64 %v1, %v0
  %v3 = add i64 %v0, 1
  br bb1
bb3:
  %v5 = call output_i64(%v1) -> void
  ret %v1
}
"#;

    #[test]
    fn loop_with_phis_matches_reference() {
        let (a, b) = both(LOOP_SRC, &RunConfig::default());
        assert_eq!(b.status, RunStatus::Completed(Some(RtVal::I64(45))));
        assert_identical(&a, &b);
    }

    #[test]
    fn injection_sweep_matches_reference() {
        let clean = {
            let module = parse_module(LOOP_SRC).unwrap();
            Machine::new(&module).run(&RunConfig::default()).unwrap()
        };
        for target in 0..clean.eligible_results {
            for bit in [0u32, 3, 17, 62] {
                let config = RunConfig {
                    injection: Some(Injection::at_global_index(target, bit)),
                    ..RunConfig::default()
                };
                let (a, b) = both(LOOP_SRC, &config);
                assert_identical(&a, &b);
            }
        }
    }

    /// Pins [`HotCounters::inject`] to [`maybe_inject`]: for every value
    /// type and a spread of requested bits, the two produce the same
    /// flipped image and the same eligible/site bookkeeping.
    #[test]
    fn injection_bits_twin_agrees() {
        let module = parse_module(LOOP_SRC).unwrap();
        let (fid, func) = module.functions().next().unwrap();
        let id = func.block(func.entry()).insts()[0];
        for value in [
            RtVal::I64(-7),
            RtVal::F64(3.25),
            RtVal::Bool(true),
            RtVal::Ptr(0xdead_beef),
        ] {
            for bit in [0u32, 1, 17, 63] {
                let config = RunConfig {
                    injection: Some(Injection::at_global_index(0, bit)),
                    ..RunConfig::default()
                };
                let width = value.ty().bit_width().max(1);
                let mut env = SerialEnv;
                let mut s1 = RunState::start(Memory::new(), &config, &mut env);
                let flipped = maybe_inject(&mut s1, fid, id, value);
                let mut env2 = SerialEnv;
                let mut s2 = RunState::start(Memory::new(), &config, &mut env2);
                let mut hot = HotCounters::load(&s2);
                let flipped_bits = hot.inject(&mut s2, fid, id, width, value.bits());
                hot.flush(&mut s2);
                assert_eq!(flipped.bits(), flipped_bits, "{value:?} bit {bit}");
                assert_eq!(flipped, RtVal::from_bits(value.ty(), flipped_bits));
                assert_eq!(s1.eligible_results, s2.eligible_results);
                assert_eq!(s1.injected_site, s2.injected_site);
            }
        }
    }

    /// Every fault model must preserve the bit-identity contract: for
    /// each model, sweep a spread of targets and bits over a workload
    /// that exercises loads, stores, and conditional branches, and
    /// assert the reference and pre-decoded engines produce the same
    /// corrupted execution (including the per-class dynamic counters).
    #[test]
    fn fault_model_sweep_matches_reference() {
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = call malloc(64) -> ptr
  br bb1
bb1:
  %v1 = phi i64 [bb0: 0, bb2: %v6]
  %v2 = icmp slt %v1, 8
  condbr %v2, bb2, bb3
bb2:
  %v3 = gep i64 %v0, %v1
  %v4 = mul i64 %v1, 3
  store i64 %v4, %v3
  %v5 = load i64, %v3
  %v6 = add i64 %v1, 1
  br bb1
bb3:
  br bb4
bb4:
  %v7 = phi i64 [bb3: 0, bb5: %v11]
  %v8 = phi i64 [bb3: 0, bb5: %v12]
  %v9 = icmp slt %v7, 8
  condbr %v9, bb5, bb6
bb5:
  %v10 = gep i64 %v0, %v7
  %v13 = load i64, %v10
  %v12 = add i64 %v8, %v13
  %v11 = add i64 %v7, 1
  br bb4
bb6:
  %v14 = call free(%v0) -> void
  %v15 = call output_i64(%v8) -> void
  ret %v8
}
"#;
        let clean = {
            let module = parse_module(src).unwrap();
            Machine::new(&module).run(&RunConfig::default()).unwrap()
        };
        assert!(clean.loads > 0, "workload must execute loads");
        assert!(clean.stores > 0, "workload must execute stores");
        assert!(clean.cond_branches > 0, "workload must branch");
        for model in FaultModel::ALL {
            let space = match model.site_class() {
                SiteClass::Value => clean.eligible_results,
                SiteClass::Load => clean.loads,
                SiteClass::Store => clean.stores,
                SiteClass::Branch => clean.cond_branches,
            };
            assert!(space > 0, "{model}: no eligible sites");
            for target in [0, space / 3, space / 2, space - 1] {
                for bit in [0u32, 5, 33, 63, 97] {
                    let bit = bit % model.bit_domain();
                    let config = RunConfig {
                        injection: Some(Injection::for_model(model, target, bit)),
                        ..RunConfig::default()
                    };
                    let (a, b) = both(src, &config);
                    assert_identical(&a, &b);
                    assert!(
                        a.injected_site.is_some(),
                        "{model}: target {target} never fired"
                    );
                }
            }
        }
    }

    #[test]
    fn calls_memory_and_traps_match_reference() {
        let src = r#"
fn @main() -> f64 {
bb0:
  %v0 = call malloc(32) -> ptr
  %v1 = gep f64 %v0, 2
  store f64 2.25, %v1
  %v2 = load f64, %v1
  %v3 = call @twice(%v2) -> f64
  %v4 = call free(%v0) -> void
  %v5 = call output_f64(%v3) -> void
  ret %v3
}
fn @twice(f64) -> f64 {
bb0:
  %v0 = alloca f64, 1
  store f64 %arg0, %v0
  %v1 = load f64, %v0
  %v2 = fadd f64 %v1, %v1
  ret %v2
}
"#;
        let (a, b) = both(src, &RunConfig::default());
        assert_eq!(b.status, RunStatus::Completed(Some(RtVal::F64(4.5))));
        assert_identical(&a, &b);
        // Sweep every eligible result: pointer corruptions trap the
        // same way in both engines.
        for target in 0..a.eligible_results {
            let config = RunConfig {
                injection: Some(Injection::at_global_index(target, 33)),
                ..RunConfig::default()
            };
            let (a, b) = both(src, &config);
            assert_identical(&a, &b);
        }
    }

    #[test]
    fn machine_reuse_is_stateless() {
        let module = parse_module(LOOP_SRC).unwrap();
        let prog = CompiledProgram::compile(&module);
        let mut m = CompiledMachine::new(&prog);
        let first = m.run(&RunConfig::default()).unwrap();
        // Interleave a corrupted run, then verify the clean run replays
        // bit-identically on the same machine.
        let _ = m
            .run(&RunConfig {
                injection: Some(Injection::at_global_index(2, 61)),
                ..RunConfig::default()
            })
            .unwrap();
        let again = m.run(&RunConfig::default()).unwrap();
        assert_identical(&first, &again);
    }

    #[test]
    fn budget_and_deadline_match_reference() {
        let src = "fn @main() {\nbb0:\n  br bb0\n}\n";
        let config = RunConfig {
            max_insts: 10_000,
            ..RunConfig::default()
        };
        let (a, b) = both(src, &config);
        assert_eq!(b.status, RunStatus::Hang);
        assert_identical(&a, &b);

        let module = parse_module(src).unwrap();
        let prog = CompiledProgram::compile(&module);
        let out = CompiledMachine::new(&prog)
            .run(&RunConfig {
                wall_limit: Some(Duration::from_millis(20)),
                ..RunConfig::default()
            })
            .unwrap();
        assert_eq!(out.status, RunStatus::Hang);
    }

    /// The budget must stop the compiled engine at the exact same
    /// instruction count as the reference for a spread of budgets around
    /// the poll interval (the watermark tick folds both conditions into
    /// one compare — an off-by-one here would shift every hang record).
    #[test]
    fn budget_watermark_is_exact() {
        let src = "fn @main() {\nbb0:\n  br bb0\n}\n";
        for max_insts in [1u64, 7, 4095, 4096, 4097, 8192, 10_000] {
            let config = RunConfig {
                max_insts,
                ..RunConfig::default()
            };
            let (a, b) = both(src, &config);
            assert_eq!(a.status, RunStatus::Hang);
            assert_identical(&a, &b);
        }
    }

    #[test]
    fn deep_recursion_traps_like_reference() {
        let src = r#"
fn @main() -> i64 {
bb0:
  %v0 = call @rec(0) -> i64
  ret %v0
}
fn @rec(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  %v1 = call @rec(%v0) -> i64
  ret %v1
}
"#;
        let (a, b) = both(src, &RunConfig::default());
        assert_eq!(b.status, RunStatus::Trapped(Trap::StackOverflow));
        assert_identical(&a, &b);
    }

    #[test]
    fn detection_matches_reference() {
        let src = r#"
fn @main() {
bb0:
  %v0 = add i64 1, 2
  %v1 = call __ipas_check_i(%v0, 4) -> void
  ret
}
"#;
        let (a, b) = both(src, &RunConfig::default());
        assert_eq!(b.status, RunStatus::Detected);
        assert_identical(&a, &b);
    }

    #[test]
    fn site_profile_matches_reference() {
        let config = RunConfig {
            profile_sites: true,
            ..RunConfig::default()
        };
        let (a, b) = both(LOOP_SRC, &config);
        assert_eq!(a.site_profile, b.site_profile);
    }

    #[test]
    fn eligible_trace_matches_reference() {
        let config = RunConfig {
            trace_eligible: true,
            ..RunConfig::default()
        };
        let (a, b) = both(LOOP_SRC, &config);
        assert_identical(&a, &b);
        let trace = a.eligible_trace.expect("trace requested");
        assert_eq!(trace, b.eligible_trace.expect("trace requested"));
        // The RLE runs cover the eligible sequence exactly, and the
        // encoding is maximal (no two adjacent runs share a site).
        assert_eq!(
            trace.iter().map(|&(_, _, n)| n).sum::<u64>(),
            a.eligible_results
        );
        for w in trace.windows(2) {
            assert_ne!((w[0].0, w[0].1), (w[1].0, w[1].1), "non-maximal run");
        }
        // Without the flag, no trace is produced.
        let (c, _) = both(LOOP_SRC, &RunConfig::default());
        assert!(c.eligible_trace.is_none());
    }

    #[test]
    fn entry_errors_match_reference() {
        let module = parse_module("fn @foo(i64) {\nbb0:\n  ret\n}\n").unwrap();
        let prog = CompiledProgram::compile(&module);
        let mut m = CompiledMachine::new(&prog);
        let missing = m.run(&RunConfig::default()).unwrap_err();
        assert_eq!(
            missing,
            Machine::new(&module)
                .run(&RunConfig::default())
                .unwrap_err()
        );
        let config = RunConfig {
            entry: "foo".into(),
            ..RunConfig::default()
        };
        let bad_arity = m.run(&config).unwrap_err();
        assert_eq!(bad_arity, Machine::new(&module).run(&config).unwrap_err());
    }

    #[test]
    fn engine_parses_from_str() {
        assert_eq!("reference".parse::<Engine>().unwrap(), Engine::Reference);
        assert_eq!("ref".parse::<Engine>().unwrap(), Engine::Reference);
        assert_eq!("compiled".parse::<Engine>().unwrap(), Engine::Compiled);
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Compiled);
    }
}

//! An interpreter (virtual machine) for the `ipas-ir` SSA IR.
//!
//! This crate stands in for native execution in the IPAS reproduction. It
//! provides everything the fault-injection campaigns need:
//!
//! * **deterministic execution** of whole modules, with dynamic
//!   instruction counting (the slowdown metric of the paper is reported
//!   as the ratio of dynamic instruction counts);
//! * **trap detection** — invalid memory accesses, division by zero, call
//!   stack exhaustion — which model the paper's *architecture-level
//!   symptoms*;
//! * **hang detection** via an instruction budget (the paper counts
//!   "substantially longer execution time" as an observable symptom);
//! * a **fault-injection hook** that flips one bit of the result of a
//!   chosen dynamic instruction instance ([`Injection`]);
//! * the **IPAS detector runtime**: `__ipas_check_*` intrinsic calls
//!   terminate the run with [`RunStatus::Detected`] on mismatch;
//! * an [`env::Env`] abstraction over the MPI surface so the same
//!   interpreter core runs serially or under `ipas-mpisim`.
//!
//! Two engines execute the same semantics (see `docs/interpreter.md` at
//! the repository root):
//!
//! * [`Machine`] — the tree-walking **reference** interpreter;
//! * [`CompiledMachine`] — the pre-decoded engine: one
//!   [`CompiledProgram`] lowering per module, then resettable machines
//!   that reuse their allocations across runs. Bit-identical to the
//!   reference (enforced by a differential oracle) and several times
//!   faster, which makes it the [`Engine::default`].
//!
//! # Example
//!
//! ```
//! use ipas_ir::parser::parse_module;
//! use ipas_interp::{Machine, RunConfig};
//!
//! let module = parse_module(r#"
//! fn @main() -> i64 {
//! bb0:
//!   %v0 = add i64 40, 2
//!   %v1 = call output_i64(%v0) -> void
//!   ret %v0
//! }
//! "#).unwrap();
//! let mut machine = Machine::new(&module);
//! let run = machine.run(&RunConfig::default()).unwrap();
//! assert_eq!(run.outputs.as_ints(), vec![42]);
//! ```

#![warn(missing_docs)]

pub mod compiled;
pub mod env;
pub mod machine;
pub mod memory;
pub mod rtval;
pub mod trap;

pub use compiled::{CompiledMachine, CompiledProgram, Engine};
pub use env::{Env, SerialEnv};
pub use machine::{
    is_fault_site, FaultModel, Injection, Machine, OutputStream, RunConfig, RunError, RunOutput,
    RunStatus, SiteClass,
};
pub use memory::{gep_addr, Memory, POISON_ADDR};
pub use rtval::RtVal;
pub use trap::Trap;

//! Architecture-level symptoms (traps).

use std::fmt;

/// A hardware-exception-like condition raised during interpretation.
///
/// Traps model the *observable symptoms* of the IPAS outcome taxonomy
/// (Figure 2 of the paper): in the paper's fault model, a fault that
/// raises one of these is assumed to be handled by system-level
/// fault-tolerance (checkpoint/restart), so it never becomes silent
/// corruption.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Load/store through an address outside any live allocation.
    OutOfBounds,
    /// Load/store through a pointer to a freed allocation.
    UseAfterFree,
    /// Load/store through the null page.
    NullDeref,
    /// Load/store at a non-8-byte-aligned address.
    Unaligned,
    /// Integer division or remainder by zero.
    DivByZero,
    /// `i64::MIN / -1` style overflow in division.
    DivOverflow,
    /// Call stack exceeded the frame limit.
    StackOverflow,
    /// `malloc` of a negative, zero, or implausibly large size.
    BadAlloc,
    /// Double `free` or `free` of a non-heap pointer.
    BadFree,
    /// The MPI job was aborted because another rank failed (the paper's
    /// "one process fails, all abort" symptom-propagation semantics).
    MpiAbort,
}

impl Trap {
    /// A short identifier used in campaign reports.
    pub fn code(self) -> &'static str {
        match self {
            Trap::OutOfBounds => "oob",
            Trap::UseAfterFree => "uaf",
            Trap::NullDeref => "null",
            Trap::Unaligned => "unaligned",
            Trap::DivByZero => "divzero",
            Trap::DivOverflow => "divovf",
            Trap::StackOverflow => "stackovf",
            Trap::BadAlloc => "badalloc",
            Trap::BadFree => "badfree",
            Trap::MpiAbort => "mpiabort",
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trap::OutOfBounds => "out-of-bounds memory access",
            Trap::UseAfterFree => "use after free",
            Trap::NullDeref => "null pointer dereference",
            Trap::Unaligned => "unaligned memory access",
            Trap::DivByZero => "integer division by zero",
            Trap::DivOverflow => "integer division overflow",
            Trap::StackOverflow => "call stack overflow",
            Trap::BadAlloc => "invalid allocation size",
            Trap::BadFree => "invalid free",
            Trap::MpiAbort => "aborted by MPI runtime",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        use std::collections::HashSet;
        let all = [
            Trap::OutOfBounds,
            Trap::UseAfterFree,
            Trap::NullDeref,
            Trap::Unaligned,
            Trap::DivByZero,
            Trap::DivOverflow,
            Trap::StackOverflow,
            Trap::BadAlloc,
            Trap::BadFree,
            Trap::MpiAbort,
        ];
        let codes: HashSet<_> = all.iter().map(|t| t.code()).collect();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Trap::OutOfBounds.to_string().is_empty());
    }
}

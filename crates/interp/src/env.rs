//! Execution environment: the MPI surface seen by interpreted programs.

use crate::trap::Trap;

/// The runtime environment backing the MPI intrinsics.
///
/// A serial run uses [`SerialEnv`]; `ipas-mpisim` provides a multi-rank
/// implementation where collectives synchronize OS threads and a poisoned
/// job aborts every rank with [`Trap::MpiAbort`].
///
/// Collectives return `Result` because in the paper's semantics a failed
/// rank takes the whole job down: when a sibling rank has trapped, every
/// blocked collective returns [`Trap::MpiAbort`].
pub trait Env {
    /// This process's rank in `0..size`.
    fn rank(&self) -> i64;

    /// Number of ranks in the job.
    fn size(&self) -> i64;

    /// Global sum of `v` across ranks.
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned by a failed rank.
    fn allreduce_sum_f(&mut self, v: f64) -> Result<f64, Trap>;

    /// Global integer sum of `v` across ranks.
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn allreduce_sum_i(&mut self, v: i64) -> Result<i64, Trap>;

    /// Global max of `v` across ranks.
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn allreduce_max_f(&mut self, v: f64) -> Result<f64, Trap>;

    /// Barrier across all ranks.
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn barrier(&mut self) -> Result<(), Trap>;

    /// Allgather: `chunk` is this rank's block (starting at element
    /// `lo` of the `n`-element array); the returned vector holds all `n`
    /// elements assembled from every rank.
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn allgather_f(&mut self, chunk: Vec<f64>, lo: usize, n: usize) -> Result<Vec<f64>, Trap>;

    /// Element-wise sum of `v` across ranks (float).
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn allreduce_vec_f(&mut self, v: Vec<f64>) -> Result<Vec<f64>, Trap>;

    /// Element-wise sum of `v` across ranks (integer, wrapping).
    ///
    /// # Errors
    ///
    /// [`Trap::MpiAbort`] if the job has been poisoned.
    fn allreduce_vec_i(&mut self, v: Vec<i64>) -> Result<Vec<i64>, Trap>;

    /// Cheap poison poll, checked periodically by the interpreter so that
    /// a rank spinning in compute code still observes a job abort.
    fn poisoned(&self) -> bool {
        false
    }

    /// Invoked when *this* rank fails, so the implementation can poison
    /// the job. The default (serial) behaviour is a no-op.
    fn poison(&mut self) {}
}

/// Single-process environment: rank 0 of 1; collectives are identities.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialEnv;

impl Env for SerialEnv {
    fn rank(&self) -> i64 {
        0
    }

    fn size(&self) -> i64 {
        1
    }

    fn allreduce_sum_f(&mut self, v: f64) -> Result<f64, Trap> {
        Ok(v)
    }

    fn allreduce_sum_i(&mut self, v: i64) -> Result<i64, Trap> {
        Ok(v)
    }

    fn allreduce_max_f(&mut self, v: f64) -> Result<f64, Trap> {
        Ok(v)
    }

    fn barrier(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn allgather_f(&mut self, chunk: Vec<f64>, lo: usize, n: usize) -> Result<Vec<f64>, Trap> {
        debug_assert_eq!(lo, 0);
        debug_assert_eq!(chunk.len(), n);
        Ok(chunk)
    }

    fn allreduce_vec_f(&mut self, v: Vec<f64>) -> Result<Vec<f64>, Trap> {
        Ok(v)
    }

    fn allreduce_vec_i(&mut self, v: Vec<i64>) -> Result<Vec<i64>, Trap> {
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_env_is_identity() {
        let mut env = SerialEnv;
        assert_eq!(env.rank(), 0);
        assert_eq!(env.size(), 1);
        assert_eq!(env.allreduce_sum_f(2.5), Ok(2.5));
        assert_eq!(env.allreduce_sum_i(-3), Ok(-3));
        assert_eq!(env.allreduce_max_f(7.0), Ok(7.0));
        assert_eq!(env.barrier(), Ok(()));
        assert_eq!(env.allgather_f(vec![1.0, 2.0], 0, 2), Ok(vec![1.0, 2.0]));
        assert_eq!(env.allreduce_vec_i(vec![3, 4]), Ok(vec![3, 4]));
        assert!(!env.poisoned());
    }
}

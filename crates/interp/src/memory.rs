//! The interpreter's memory model.
//!
//! Memory is a table of independent *regions* (one per `alloca` or
//! `malloc`). An address packs a region number into the upper 32 bits and
//! a byte offset into the lower 32 bits, so a bit flip in a pointer can
//! land in another live region (silent corruption), in a dead region
//! (trap), or off the end of a region (trap) — mirroring how corrupted
//! addresses behave on real hardware with guard pages.
//!
//! All accesses are 8-byte sized and 8-byte aligned; each region stores
//! raw `u64` cells. Loads and stores are assumed ECC-protected in the
//! paper's fault model, so the injector never corrupts memory contents
//! directly — only computed values (including addresses) in registers.

use crate::trap::Trap;

/// Number of address bits given to the in-region byte offset.
const OFFSET_BITS: u32 = 32;
/// Largest single allocation accepted by `malloc`/`alloca`, in bytes.
const MAX_ALLOC_BYTES: i64 = 1 << 30;

/// Canonical poison address produced by overflowing address arithmetic.
///
/// `gep` is speculatable (LICM hoists it out of loops), so it must never
/// trap itself. Instead, arithmetic that overflows the address space
/// collapses to this sentinel, which deterministically traps on any
/// subsequent access. Both engines share [`gep_addr`], so the reference
/// and compiled interpreters stay bit-identical on these paths.
pub const POISON_ADDR: u64 = u64::MAX;

/// Computes `base + index * 8` for an 8-byte element `gep`, collapsing
/// any overflow to [`POISON_ADDR`] instead of wrapping.
///
/// Wrapping arithmetic here was a real bug: a huge index could wrap the
/// address back into a live region and silently alias unrelated data —
/// exactly the class of silent corruption this project exists to catch.
#[inline]
pub fn gep_addr(base: u64, index: i64) -> u64 {
    match index.checked_mul(8) {
        Some(off) => base.checked_add_signed(off).unwrap_or(POISON_ADDR),
        None => POISON_ADDR,
    }
}

/// Region-table memory with trap-checked accesses.
#[derive(Debug, Default)]
pub struct Memory {
    regions: Vec<Option<Box<[u64]>>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocates a region of `bytes` bytes (rounded up to 8), returning
    /// its base address.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::BadAlloc`] when `bytes` is non-positive or exceeds
    /// the implementation limit.
    pub fn alloc(&mut self, bytes: i64) -> Result<u64, Trap> {
        if bytes <= 0 || bytes > MAX_ALLOC_BYTES {
            return Err(Trap::BadAlloc);
        }
        let cells = (bytes as usize).div_ceil(8);
        let region = self.regions.len() as u64;
        self.regions
            .push(Some(vec![0u64; cells].into_boxed_slice()));
        // Region numbers start at 1 in the address encoding so that 0 is
        // the unmapped null page.
        Ok((region + 1) << OFFSET_BITS)
    }

    /// Frees the region containing `addr` (which must be its base).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::BadFree`] for non-base pointers, double frees, and
    /// addresses that never came from [`Memory::alloc`].
    pub fn free(&mut self, addr: u64) -> Result<(), Trap> {
        if addr >> OFFSET_BITS == 0 {
            // The null page never came from `alloc`.
            return Err(Trap::BadFree);
        }
        let (region, offset) = Self::split(addr);
        if offset != 0 {
            return Err(Trap::BadFree);
        }
        match self.slot_mut(region)? {
            Some(_) => {
                self.regions[region] = None;
                Ok(())
            }
            None => Err(Trap::BadFree),
        }
    }

    /// Loads the 8-byte cell at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the appropriate [`Trap`] for null, unaligned,
    /// out-of-bounds, or freed addresses.
    pub fn load(&self, addr: u64) -> Result<u64, Trap> {
        let (region, offset) = Self::check(addr)?;
        let data = self.region_data(region)?;
        data.get(offset / 8).copied().ok_or(Trap::OutOfBounds)
    }

    /// Stores `value` into the 8-byte cell at `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load`].
    pub fn store(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        let (region, offset) = Self::check(addr)?;
        let cell = offset / 8;
        match self.slot_mut(region)? {
            Some(data) => match data.get_mut(cell) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(Trap::OutOfBounds),
            },
            None => Err(Trap::UseAfterFree),
        }
    }

    /// Clears all regions while keeping the region table's capacity, so
    /// a pooled memory can be reused across runs without reallocating
    /// the table. Freshly allocated regions after a reset start at
    /// region number 1 again, exactly like a new memory — addresses are
    /// reproducible run to run.
    pub fn reset(&mut self) {
        self.regions.clear();
    }

    /// Number of live regions (for leak assertions in tests).
    pub fn live_regions(&self) -> usize {
        self.regions.iter().filter(|r| r.is_some()).count()
    }

    fn split(addr: u64) -> (usize, usize) {
        let region = (addr >> OFFSET_BITS) as usize;
        let offset = (addr & ((1u64 << OFFSET_BITS) - 1)) as usize;
        // Region numbers are offset by one in the encoding.
        (region.wrapping_sub(1), offset)
    }

    fn check(addr: u64) -> Result<(usize, usize), Trap> {
        if addr == POISON_ADDR {
            return Err(Trap::OutOfBounds);
        }
        if addr >> OFFSET_BITS == 0 {
            return Err(Trap::NullDeref);
        }
        let (region, offset) = Self::split(addr);
        if offset % 8 != 0 {
            return Err(Trap::Unaligned);
        }
        Ok((region, offset))
    }

    fn region_data(&self, region: usize) -> Result<&[u64], Trap> {
        match self.regions.get(region) {
            Some(Some(data)) => Ok(data),
            Some(None) => Err(Trap::UseAfterFree),
            None => Err(Trap::OutOfBounds),
        }
    }

    fn slot_mut(&mut self, region: usize) -> Result<&mut Option<Box<[u64]>>, Trap> {
        self.regions.get_mut(region).ok_or(Trap::OutOfBounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_store_load_round_trip() {
        let mut m = Memory::new();
        let base = m.alloc(24).unwrap();
        m.store(base, 11).unwrap();
        m.store(base + 8, 22).unwrap();
        m.store(base + 16, 33).unwrap();
        assert_eq!(m.load(base).unwrap(), 11);
        assert_eq!(m.load(base + 8).unwrap(), 22);
        assert_eq!(m.load(base + 16).unwrap(), 33);
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let mut m = Memory::new();
        let base = m.alloc(8).unwrap();
        assert_eq!(m.load(base).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Memory::new();
        let base = m.alloc(8).unwrap();
        assert_eq!(m.load(base + 8), Err(Trap::OutOfBounds));
        assert_eq!(m.store(base + 8, 1), Err(Trap::OutOfBounds));
    }

    #[test]
    fn null_and_unaligned_trap() {
        let mut m = Memory::new();
        let base = m.alloc(16).unwrap();
        assert_eq!(m.load(0), Err(Trap::NullDeref));
        assert_eq!(m.load(7), Err(Trap::NullDeref)); // still the null page
        assert_eq!(m.load(base + 4), Err(Trap::Unaligned));
    }

    #[test]
    fn use_after_free_traps() {
        let mut m = Memory::new();
        let base = m.alloc(8).unwrap();
        m.free(base).unwrap();
        assert_eq!(m.load(base), Err(Trap::UseAfterFree));
        assert_eq!(m.free(base), Err(Trap::BadFree));
    }

    #[test]
    fn bad_alloc_sizes_trap() {
        let mut m = Memory::new();
        assert_eq!(m.alloc(0), Err(Trap::BadAlloc));
        assert_eq!(m.alloc(-8), Err(Trap::BadAlloc));
        assert_eq!(m.alloc(i64::MAX), Err(Trap::BadAlloc));
    }

    #[test]
    fn free_of_interior_pointer_traps() {
        let mut m = Memory::new();
        let base = m.alloc(16).unwrap();
        assert_eq!(m.free(base + 8), Err(Trap::BadFree));
        assert_eq!(m.live_regions(), 1);
    }

    #[test]
    fn reset_reproduces_fresh_addressing() {
        let mut m = Memory::new();
        let a = m.alloc(16).unwrap();
        let _ = m.alloc(8).unwrap();
        m.store(a, 7).unwrap();
        m.reset();
        assert_eq!(m.live_regions(), 0);
        let a2 = m.alloc(16).unwrap();
        assert_eq!(a, a2, "addresses replay after reset");
        assert_eq!(m.load(a2).unwrap(), 0, "memory after reset is zeroed");
    }

    #[test]
    fn free_of_null_page_is_bad_free() {
        let mut m = Memory::new();
        assert_eq!(m.free(0), Err(Trap::BadFree));
        assert_eq!(m.free(8), Err(Trap::BadFree));
    }

    #[test]
    fn poison_address_always_traps() {
        let mut m = Memory::new();
        let _ = m.alloc(8).unwrap();
        assert_eq!(m.load(POISON_ADDR), Err(Trap::OutOfBounds));
        assert_eq!(m.store(POISON_ADDR, 1), Err(Trap::OutOfBounds));
    }

    #[test]
    fn gep_addr_overflow_is_poison_not_wrap() {
        let mut m = Memory::new();
        let base = m.alloc(16).unwrap();
        // In-range arithmetic is exact.
        assert_eq!(gep_addr(base, 1), base + 8);
        assert_eq!(gep_addr(base + 8, -1), base);
        // Index * 8 overflow and base + offset overflow both poison: the
        // old wrapping arithmetic could alias addr back into region 1.
        assert_eq!(gep_addr(base, i64::MAX), POISON_ADDR);
        assert_eq!(gep_addr(base, i64::MIN), POISON_ADDR);
        assert_eq!(gep_addr(u64::MAX - 7, 1), POISON_ADDR);
        assert_eq!(m.load(gep_addr(base, i64::MAX)), Err(Trap::OutOfBounds));
    }

    #[test]
    fn corrupted_region_bits_trap_or_alias() {
        let mut m = Memory::new();
        let a = m.alloc(8).unwrap(); // region 1
        let _b = m.alloc(8).unwrap(); // region 2
        let c = m.alloc(8).unwrap(); // region 3
        m.store(c, 99).unwrap();
        // Flipping bit 33 of `a` (region 1 -> region 3) lands on `c`:
        // silent aliasing, exactly how corrupted pointers hit live data.
        let aliased = a ^ (1 << 33);
        assert_eq!(aliased, c);
        assert_eq!(m.load(aliased).unwrap(), 99);
        // Flipping a high region bit leaves the region table: trap.
        assert_eq!(m.load(a ^ (1 << 50)), Err(Trap::OutOfBounds));
    }
}

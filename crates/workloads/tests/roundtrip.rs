//! Printer → parser round-trip over every bundled workload.
//!
//! The artifact store keys campaigns and protected modules by the
//! printed IR text, and `protected-module` artifacts embed that text
//! verbatim. Workload modules print with their in-memory (sparse,
//! post-optimization) value numbers while the parser assigns dense
//! ones, so the first parse canonicalizes the numbering; from then on
//! print → parse → print must be an exact fixpoint, and the round trip
//! must preserve structure and constants losslessly throughout.

use ipas_ir::parser::parse_module;
use ipas_ir::{Constant, Module, Value};
use ipas_workloads::Kind;

/// Structural summary that must survive re-parsing: per-function name,
/// block count, opcode sequence, and every constant operand in order.
fn shape(module: &Module) -> Vec<(String, usize, Vec<&'static str>, Vec<Constant>)> {
    module
        .functions()
        .map(|(_, func)| {
            let mut opcodes = Vec::new();
            let mut consts = Vec::new();
            for bb in func.block_ids() {
                for &id in func.block(bb).insts() {
                    let inst = func.inst(id);
                    opcodes.push(inst.opcode_name());
                    inst.for_each_operand(|v| {
                        if let Value::Const(c) = v {
                            consts.push(c);
                        }
                    });
                }
            }
            (func.name().to_string(), func.num_blocks(), opcodes, consts)
        })
        .collect()
}

#[test]
fn every_workload_module_roundtrips_losslessly() {
    for kind in Kind::ALL {
        let workload = kind
            .build(kind.base_input())
            .unwrap_or_else(|e| panic!("{} builds: {e}", kind.name()));
        let text = workload.module.to_text();
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} printed module parses: {e}", kind.name()));
        assert_eq!(
            shape(&workload.module),
            shape(&reparsed),
            "{}: structure and constants preserved",
            kind.name()
        );

        // After the parser's dense renumbering, the text is canonical:
        // further round trips are exact fixpoints.
        let canonical = reparsed.to_text();
        let reparsed2 = parse_module(&canonical)
            .unwrap_or_else(|e| panic!("{} canonical module parses: {e}", kind.name()));
        assert_eq!(
            canonical,
            reparsed2.to_text(),
            "{}: canonical print → parse → print must be a fixpoint",
            kind.name()
        );
        assert_eq!(shape(&reparsed), shape(&reparsed2));
    }
}

#[test]
fn workload_builds_are_deterministic() {
    for kind in Kind::ALL {
        let a = kind
            .build(kind.base_input())
            .expect("builds")
            .module
            .to_text();
        let b = kind
            .build(kind.base_input())
            .expect("builds")
            .module
            .to_text();
        assert_eq!(a, b, "{}: rebuild must print identically", kind.name());
    }
}

//! Structural checks over the compiled workload modules: the IR that
//! the classifier, duplication pass, and campaigns all consume.

use ipas_analysis::{Feature, FeatureExtractor};
use ipas_ir::verify::verify_module;
use ipas_workloads::{sources, Kind};

fn module(kind: Kind) -> ipas_ir::Module {
    ipas_lang::compile_named(sources::source(kind), kind.name()).expect("compiles")
}

#[test]
fn all_modules_verify_and_round_trip_textually() {
    for kind in Kind::ALL {
        let m = module(kind);
        verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let normalized = ipas_ir::parser::parse_module(&m.to_text())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        verify_module(&normalized).unwrap_or_else(|e| panic!("{} reparse: {e}", kind.name()));
        let again = ipas_ir::parser::parse_module(&normalized.to_text()).expect("stable");
        assert_eq!(normalized.to_text(), again.to_text(), "{}", kind.name());
    }
}

#[test]
fn optimized_modules_have_no_allocas_or_trivial_ops() {
    use ipas_ir::Inst;
    for kind in Kind::ALL {
        let m = module(kind);
        for (_, f) in m.functions() {
            for bb in f.block_ids() {
                for &id in f.block(bb).insts() {
                    assert!(
                        !matches!(f.inst(id), Inst::Alloca { .. }),
                        "{}: scalar alloca survived mem2reg in {}",
                        kind.name(),
                        f.name()
                    );
                }
            }
        }
    }
}

#[test]
fn feature_extraction_is_total_and_sane_on_all_workloads() {
    for kind in Kind::ALL {
        let m = module(kind);
        let extractor = FeatureExtractor::new(&m);
        for (fid, f) in m.functions() {
            let all = extractor.extract_all(fid);
            assert_eq!(all.len(), f.num_linked_insts(), "{}", kind.name());
            for (id, fv) in all {
                for (feat, &v) in Feature::ALL.iter().zip(fv.as_slice()) {
                    assert!(
                        v.is_finite() && v >= 0.0,
                        "{}: {} of {id} = {v}",
                        kind.name(),
                        feat.name()
                    );
                }
                // Consistency: function-level features match the function.
                assert_eq!(
                    fv.get(Feature::FuncInsts) as usize,
                    f.num_linked_insts(),
                    "{}",
                    kind.name()
                );
                assert_eq!(
                    fv.get(Feature::FuncBlocks) as usize,
                    f.num_blocks(),
                    "{}",
                    kind.name()
                );
                // The slice always contains at least the instruction.
                assert!(fv.get(Feature::SliceTotal) >= 1.0);
                // Block-local position is inside the block.
                assert!(fv.get(Feature::RemainingInBlock) < fv.get(Feature::BlockSize));
            }
        }
    }
}

#[test]
fn every_workload_contains_loops_and_calls() {
    // The feature space must be non-degenerate: loops exist, calls
    // exist, and both boolean polarities of InLoop appear.
    for kind in Kind::ALL {
        let m = module(kind);
        let extractor = FeatureExtractor::new(&m);
        let mut in_loop = 0usize;
        let mut out_of_loop = 0usize;
        let mut calls = 0usize;
        for (fid, _) in m.functions() {
            for (_, fv) in extractor.extract_all(fid) {
                if fv.get(Feature::InLoop) > 0.5 {
                    in_loop += 1;
                } else {
                    out_of_loop += 1;
                }
                if fv.get(Feature::IsCall) > 0.5 {
                    calls += 1;
                }
            }
        }
        assert!(in_loop > 0, "{}: no loop instructions", kind.name());
        assert!(out_of_loop > 0, "{}: everything in loops", kind.name());
        assert!(calls > 0, "{}: no calls", kind.name());
    }
}

#[test]
fn loc_matches_reported_table() {
    // Guard against the Table 3 harness drifting from the sources.
    for kind in Kind::ALL {
        let loc = sources::lines_of_code(kind);
        let raw_lines = sources::source(kind).lines().count();
        assert!(loc > 0 && loc <= raw_lines);
    }
}

//! Golden per-workload pass-statistics snapshots.
//!
//! The default pipeline's behaviour on the five SciL workloads is
//! pinned three ways: the printed IR must be byte-identical to the
//! historical free-function optimization loop, analysis caching must
//! strictly reduce `DomTree::compute` calls, and every pass's named
//! counters must match the recorded snapshot. A snapshot diff means a
//! pass (or the frontend lowering feeding it) changed behaviour — if
//! intentional, re-record from this test's failure output.

use ipas_ir::dom::DomTree;
use ipas_ir::passes;
use ipas_ir::passmgr::PassManager;
use ipas_ir::{FuncId, Module};
use ipas_workloads::{sources, Kind};

/// The historical `optimize_function` loop, verbatim.
fn naive_optimize_module(module: &mut Module) {
    let ids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    for id in ids {
        let func = module.function_mut(id);
        passes::promote_memory_to_registers(func);
        loop {
            let folded = passes::constant_fold(func);
            let simplified = passes::simplify_instructions(func);
            let merged = passes::eliminate_common_subexpressions(func);
            let removed = passes::eliminate_dead_code(func);
            let blocks = passes::simplify_cfg(func);
            if folded + simplified + merged + removed + blocks == 0 {
                break;
            }
        }
    }
}

struct Snapshot {
    kind: Kind,
    executions: u64,
    skipped: u64,
    /// `(counter, value)` for each pass's headline statistic.
    counters: &'static [(&'static str, u64)],
}

/// Recorded from a known-good run (see module docs for re-recording).
const SNAPSHOTS: &[Snapshot] = &[
    Snapshot {
        kind: Kind::Comd,
        executions: 20,
        skipped: 2,
        counters: &[
            ("allocas-promoted", 49),
            ("insts-folded", 0),
            ("insts-simplified", 0),
            ("insts-merged", 32),
            ("insts-removed", 32),
            ("blocks-removed", 6),
        ],
    },
    Snapshot {
        kind: Kind::Hpccg,
        executions: 30,
        skipped: 3,
        counters: &[
            ("allocas-promoted", 47),
            ("insts-folded", 0),
            ("insts-simplified", 0),
            ("insts-merged", 11),
            ("insts-removed", 12),
            ("blocks-removed", 7),
        ],
    },
    Snapshot {
        kind: Kind::Amg,
        executions: 70,
        skipped: 7,
        counters: &[
            ("allocas-promoted", 76),
            ("insts-folded", 1),
            ("insts-simplified", 0),
            ("insts-merged", 68),
            ("insts-removed", 24),
            ("blocks-removed", 11),
        ],
    },
    Snapshot {
        kind: Kind::Fft,
        executions: 50,
        skipped: 5,
        counters: &[
            ("allocas-promoted", 67),
            ("insts-folded", 1),
            ("insts-simplified", 0),
            ("insts-merged", 32),
            ("insts-removed", 33),
            ("blocks-removed", 13),
        ],
    },
    Snapshot {
        kind: Kind::Is,
        executions: 16,
        skipped: 1,
        counters: &[
            ("allocas-promoted", 15),
            ("insts-folded", 1),
            ("insts-simplified", 0),
            ("insts-merged", 2),
            ("insts-removed", 3),
            ("blocks-removed", 4),
        ],
    },
];

#[test]
fn snapshots_cover_every_workload() {
    let snapped: Vec<Kind> = SNAPSHOTS.iter().map(|s| s.kind).collect();
    assert_eq!(snapped, Kind::ALL.to_vec());
}

#[test]
fn default_pipeline_matches_golden_stats_and_naive_output() {
    for snap in SNAPSHOTS {
        let name = snap.kind.name();
        let base = ipas_lang::compile_unoptimized(sources::source(snap.kind), name)
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));

        let mut naive = base.clone();
        let before = DomTree::computations();
        naive_optimize_module(&mut naive);
        let dom_naive = DomTree::computations() - before;

        let mut managed = base.clone();
        let mut pm = PassManager::standard();
        let before = DomTree::computations();
        pm.run_module(&mut managed)
            .expect("default pipeline without verify-each cannot fail");
        let dom_managed = DomTree::computations() - before;

        assert_eq!(
            managed.to_text(),
            naive.to_text(),
            "{name}: pass manager diverged from the historical loop"
        );
        assert!(
            dom_managed < dom_naive,
            "{name}: analysis caching did not reduce DomTree computes \
             ({dom_managed} vs {dom_naive})"
        );

        let stats = pm.stats();
        assert_eq!(stats.executions, snap.executions, "{name}: executions");
        assert_eq!(stats.skipped, snap.skipped, "{name}: skipped");
        let actual: Vec<(&str, u64)> = stats
            .passes()
            .flat_map(|(_, s)| s.counters().iter().copied())
            .collect();
        assert_eq!(
            actual, snap.counters,
            "{name}: pass counters drifted from the golden snapshot"
        );
    }
}

//! The five evaluation workloads of the IPAS paper, written in SciL.
//!
//! Table 2 of the paper lists the codes and their verification routines;
//! this crate reproduces each pair (scaled to interpreter-friendly
//! sizes — EXPERIMENTS.md records the exact inputs used per figure):
//!
//! | Code  | This implementation | Verification |
//! |-------|---------------------|--------------|
//! | CoMD  | Lennard-Jones molecular dynamics, leapfrog integration, O(N²) cutoff pairs, force loop partitioned across ranks | per-step total energy within 3σ of the golden run's energy distribution ([`verify::EnergyVerifier`]) |
//! | HPCCG | conjugate gradient on the 7-point 3D Poisson operator, matrix-free, rank-partitioned rows | error vs the known exact solution < 1e-6 within the iteration limit ([`verify::ConvergenceVerifier`]) |
//! | AMG   | 3-level geometric multigrid V-cycle (weighted-Jacobi smoother, cell-averaged restriction, constant prolongation) on 2D Poisson | relative residual < 1e-6 within the allotted V-cycles ([`verify::ConvergenceVerifier`]) |
//! | FFT   | radix-2 2D FFT + inverse over a deterministic matrix | L2 norm vs the error-free output < 1e-6 ([`verify::L2Verifier`]) |
//! | IS    | counting sort of LCG-generated keys (NPB IS flavor) | output keys sorted and complete ([`verify::SortedVerifier`]) |
//!
//! Every program is MPI-parallel in the paper's style: loops are
//! block-partitioned by `mpi_rank()`/`mpi_size()` with allreduce/allgather
//! collectives, and degenerate gracefully to serial execution under the
//! default single-rank environment.
//!
//! # Example
//!
//! ```
//! let workload = ipas_workloads::hpccg(4).unwrap();
//! assert!(workload.nominal_insts > 10_000);
//! // The golden run converged below tolerance:
//! assert!(workload.golden.as_floats()[0] < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod sources;
pub mod verify;

use ipas_faultsim::{Workload, WorkloadError};
use ipas_interp::RtVal;

use verify::{ConvergenceVerifier, EnergyVerifier, L2Verifier, SortedVerifier};

/// Identifies one of the five paper workloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Molecular dynamics mini-app.
    Comd,
    /// Conjugate-gradient mini-app.
    Hpccg,
    /// Algebraic multigrid solve kernel.
    Amg,
    /// 2D fast Fourier transform kernel.
    Fft,
    /// NPB integer sort.
    Is,
}

impl Kind {
    /// All workloads in paper order.
    pub const ALL: [Kind; 5] = [Kind::Comd, Kind::Hpccg, Kind::Amg, Kind::Fft, Kind::Is];

    /// The paper's name for the code.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Comd => "CoMD",
            Kind::Hpccg => "HPCCG",
            Kind::Amg => "AMG",
            Kind::Fft => "FFT",
            Kind::Is => "IS",
        }
    }

    /// The base input used for training (the reproduction's analog of
    /// Table 5's "Input 1").
    pub fn base_input(self) -> i64 {
        match self {
            Kind::Comd => 3,  // 3³ = 27 atoms
            Kind::Hpccg => 6, // 6³ = 216 unknowns
            Kind::Amg => 8,   // 8×8 fine grid
            Kind::Fft => 16,  // 16×16 matrix
            Kind::Is => 1024, // 1,024 keys
        }
    }

    /// The larger inputs 2–4 (Table 5's ladder, scaled).
    pub fn input_ladder(self) -> [i64; 4] {
        let b = self.base_input();
        match self {
            Kind::Comd => [b, 4, 5, 6],
            Kind::Hpccg => [b, 8, 10, 12],
            Kind::Amg => [b, 12, 16, 20],
            Kind::Fft => [b, 32, 64, 128],
            Kind::Is => [b, 2048, 4096, 8192],
        }
    }

    /// Builds the workload for a given input.
    ///
    /// # Errors
    ///
    /// Propagates compilation or golden-run failures (which indicate a
    /// bug in this crate, not user error).
    pub fn build(self, input: i64) -> Result<Workload, WorkloadError> {
        match self {
            Kind::Comd => comd(input),
            Kind::Hpccg => hpccg(input),
            Kind::Amg => amg(input),
            Kind::Fft => fft(input),
            Kind::Is => is(input),
        }
    }
}

fn compile(kind: Kind) -> ipas_ir::Module {
    let src = sources::source(kind);
    ipas_lang::compile_named(src, kind.name())
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", kind.name()))
}

/// CoMD: Lennard-Jones MD on an `n³`-atom cubic lattice, 10 leapfrog
/// steps, emitting the total energy each step.
///
/// # Errors
///
/// Fails if the golden run does not complete (crate bug).
pub fn comd(nside: i64) -> Result<Workload, WorkloadError> {
    let module = compile(Kind::Comd);
    Workload::with_custom_verifier("CoMD", module, "main", vec![RtVal::I64(nside)], |golden| {
        Box::new(EnergyVerifier::from_golden(&golden.outputs))
    })
}

/// HPCCG: CG on the 7-point 3D Poisson operator over an `nx³` grid;
/// emits the solution error against the known exact solution and the
/// iteration count.
///
/// # Errors
///
/// Fails if the golden run does not complete (crate bug).
pub fn hpccg(nx: i64) -> Result<Workload, WorkloadError> {
    let module = compile(Kind::Hpccg);
    Workload::with_custom_verifier("HPCCG", module, "main", vec![RtVal::I64(nx)], |_| {
        Box::new(ConvergenceVerifier::new(1e-6, 200))
    })
}

/// AMG: 3-level V-cycles on the 2D 5-point Poisson problem over an
/// `n×n` grid; emits the relative residual and the cycle count.
///
/// # Errors
///
/// Fails if the golden run does not complete (crate bug).
pub fn amg(n: i64) -> Result<Workload, WorkloadError> {
    let module = compile(Kind::Amg);
    Workload::with_custom_verifier("AMG", module, "main", vec![RtVal::I64(n)], |_| {
        Box::new(ConvergenceVerifier::new(1e-6, 60))
    })
}

/// FFT: radix-2 2D FFT and inverse of an `n×n` matrix (`n` a power of
/// two), emitting the reconstructed matrix.
///
/// # Errors
///
/// Fails if the golden run does not complete (crate bug).
pub fn fft(n: i64) -> Result<Workload, WorkloadError> {
    let module = compile(Kind::Fft);
    Workload::with_custom_verifier("FFT", module, "main", vec![RtVal::I64(n)], |golden| {
        Box::new(L2Verifier::new(golden.outputs.as_floats(), 1e-6))
    })
}

/// IS: counting sort of `nkeys` LCG-generated keys, emitting the sorted
/// sequence.
///
/// # Errors
///
/// Fails if the golden run does not complete (crate bug).
pub fn is(nkeys: i64) -> Result<Workload, WorkloadError> {
    let module = compile(Kind::Is);
    Workload::with_custom_verifier("IS", module, "main", vec![RtVal::I64(nkeys)], |golden| {
        Box::new(SortedVerifier::new(golden.outputs.as_ints().len()))
    })
}

/// Builds all five workloads at their base (training) inputs.
///
/// # Errors
///
/// Fails if any golden run fails (crate bug).
pub fn base_suite() -> Result<Vec<Workload>, WorkloadError> {
    Kind::ALL.iter().map(|k| k.build(k.base_input())).collect()
}

/// Rebuilds a workload of the given kind around an arbitrary module
/// (e.g. an IPAS-protected one) at a new input, constructing the kind's
/// verification routine from the module's own golden run. Used by the
/// input-variation experiment (Figure 9), which protects a module
/// trained on input 1 and evaluates it on inputs 2–4.
///
/// The golden-dependent verifiers (CoMD, FFT) are sound here because a
/// fault-free protected run produces outputs identical to the
/// unprotected code.
///
/// # Errors
///
/// Fails when the module's clean run at `input` does not complete.
pub fn rebuild_with_module(
    kind: Kind,
    module: ipas_ir::Module,
    input: i64,
) -> Result<Workload, WorkloadError> {
    let args = vec![RtVal::I64(input)];
    match kind {
        Kind::Comd => Workload::with_custom_verifier(kind.name(), module, "main", args, |g| {
            Box::new(EnergyVerifier::from_golden(&g.outputs))
        }),
        Kind::Hpccg => Workload::with_custom_verifier(kind.name(), module, "main", args, |_| {
            Box::new(ConvergenceVerifier::new(1e-6, 200))
        }),
        Kind::Amg => Workload::with_custom_verifier(kind.name(), module, "main", args, |_| {
            Box::new(ConvergenceVerifier::new(1e-6, 60))
        }),
        Kind::Fft => Workload::with_custom_verifier(kind.name(), module, "main", args, |g| {
            Box::new(L2Verifier::new(g.outputs.as_floats(), 1e-6))
        }),
        Kind::Is => Workload::with_custom_verifier(kind.name(), module, "main", args, |g| {
            Box::new(SortedVerifier::new(g.outputs.as_ints().len()))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_converge() {
        for kind in Kind::ALL {
            let w = kind.build(kind.base_input()).unwrap();
            assert!(
                w.nominal_insts > 10_000,
                "{}: {}",
                kind.name(),
                w.nominal_insts
            );
            assert!(w.eligible_results > 1_000, "{}", kind.name());
            assert!(!w.golden.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn hpccg_converges_to_exact_solution() {
        let w = hpccg(5).unwrap();
        let outs = w.golden.as_floats();
        assert!(outs[0] < 1e-6, "error norm {}", outs[0]);
        let iters = w.golden.as_ints()[0];
        assert!(iters > 3 && iters < 200, "iterations {iters}");
    }

    #[test]
    fn amg_reduces_residual_below_tolerance() {
        let w = amg(16).unwrap();
        let res = w.golden.as_floats()[0];
        assert!(res < 1e-6, "relative residual {res}");
    }

    #[test]
    fn fft_round_trip_reconstructs_input() {
        let w = fft(8).unwrap();
        let outs = w.golden.as_floats();
        assert_eq!(outs.len(), 64);
        // The golden output equals the (deterministic) input pattern.
        for (idx, v) in outs.iter().enumerate() {
            let i = (idx / 8) as f64;
            let j = (idx % 8) as f64;
            let expect = (0.7 * i).sin() * (0.3 * j + 0.5).cos();
            assert!((v - expect).abs() < 1e-9, "({i},{j}): {v} vs {expect}");
        }
    }

    #[test]
    fn is_output_is_sorted_and_complete() {
        let w = is(512).unwrap();
        let keys = w.golden.as_ints();
        assert_eq!(keys.len(), 512);
        assert!(keys.windows(2).all(|p| p[0] <= p[1]));
        // Keys should span a decent range (LCG quality check).
        assert!(keys.last().unwrap() - keys.first().unwrap() > 100);
    }

    #[test]
    fn comd_energy_is_roughly_conserved() {
        let w = comd(3).unwrap();
        let energies = w.golden.as_floats();
        assert_eq!(energies.len(), 10);
        let mean: f64 = energies.iter().sum::<f64>() / energies.len() as f64;
        for e in &energies {
            assert!(
                (e - mean).abs() < 0.05 * mean.abs().max(1.0),
                "energy drifted: {e} vs mean {mean}"
            );
        }
    }

    #[test]
    fn inputs_scale_work() {
        let small = hpccg(4).unwrap();
        let large = hpccg(6).unwrap();
        assert!(large.nominal_insts > small.nominal_insts * 2);
    }

    #[test]
    fn ladders_start_at_base() {
        for kind in Kind::ALL {
            assert_eq!(kind.input_ladder()[0], kind.base_input());
        }
    }
}

//! Verification routines (Table 2 of the paper).

use ipas_faultsim::OutputVerifier;
use ipas_interp::{OutputStream, RunOutput};

/// CoMD-style verification: every per-step total energy of the faulty
/// run must fall within three standard deviations of the golden run's
/// energy distribution (and the step count must match).
#[derive(Debug, Clone)]
pub struct EnergyVerifier {
    expected_len: usize,
    mean: f64,
    band: f64,
}

impl EnergyVerifier {
    /// Builds the verifier from the golden run's per-step energies.
    pub fn from_golden(golden: &OutputStream) -> Self {
        let energies = golden.as_floats();
        let n = energies.len().max(1) as f64;
        let mean = energies.iter().sum::<f64>() / n;
        let var = energies
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / n;
        let sigma = var.sqrt();
        // Guard against a perfectly flat golden series: allow at least a
        // tiny relative band so FP noise from masked faults passes.
        let band = (3.0 * sigma).max(1e-10 * mean.abs().max(1.0));
        EnergyVerifier {
            expected_len: energies.len(),
            mean,
            band,
        }
    }

    /// The acceptance band half-width (3σ with a floor).
    pub fn band(&self) -> f64 {
        self.band
    }
}

impl OutputVerifier for EnergyVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let energies = run.outputs.as_floats();
        energies.len() == self.expected_len
            && energies
                .iter()
                .all(|e| e.is_finite() && (e - self.mean).abs() <= self.band)
    }

    fn describe(&self) -> String {
        format!(
            "total energy within ±{:.3e} of {:.6} for {} steps",
            self.band, self.mean, self.expected_len
        )
    }
}

/// HPCCG/AMG-style verification: the emitted error/residual must be
/// finite and below tolerance, and the emitted iteration count must not
/// exceed the limit. This does *not* compare against golden outputs —
/// like the paper's routines, a faulty run that still converges is
/// masked.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceVerifier {
    tol: f64,
    max_iters: i64,
}

impl ConvergenceVerifier {
    /// Accepts runs whose first float output is `< tol` and whose first
    /// integer output is `<= max_iters`.
    pub fn new(tol: f64, max_iters: i64) -> Self {
        ConvergenceVerifier { tol, max_iters }
    }
}

impl OutputVerifier for ConvergenceVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let floats = run.outputs.as_floats();
        let ints = run.outputs.as_ints();
        let (Some(&err), Some(&iters)) = (floats.first(), ints.first()) else {
            return false;
        };
        floats.len() == 1
            && ints.len() == 1
            && err.is_finite()
            && err < self.tol
            && iters <= self.max_iters
    }

    fn describe(&self) -> String {
        format!(
            "converged below {:.0e} within {} iterations",
            self.tol, self.max_iters
        )
    }
}

/// FFT-style verification: the L2 norm of the difference between the
/// faulty and golden float outputs must be below tolerance.
#[derive(Debug, Clone)]
pub struct L2Verifier {
    golden: Vec<f64>,
    tol: f64,
}

impl L2Verifier {
    /// Builds the verifier from the golden float outputs.
    pub fn new(golden: Vec<f64>, tol: f64) -> Self {
        L2Verifier { golden, tol }
    }
}

impl OutputVerifier for L2Verifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let out = run.outputs.as_floats();
        if out.len() != self.golden.len() {
            return false;
        }
        let mut sum = 0.0;
        for (a, g) in out.iter().zip(&self.golden) {
            if !a.is_finite() {
                return false;
            }
            sum += (a - g) * (a - g);
        }
        sum.sqrt() <= self.tol
    }

    fn describe(&self) -> String {
        format!("L2 distance to golden output <= {:.0e}", self.tol)
    }
}

/// IS-style verification (the NPB benchmark's own check): the emitted
/// keys must be sorted ascending and the count must match.
#[derive(Debug, Clone, Copy)]
pub struct SortedVerifier {
    expected_len: usize,
}

impl SortedVerifier {
    /// Accepts runs emitting exactly `expected_len` ascending keys.
    pub fn new(expected_len: usize) -> Self {
        SortedVerifier { expected_len }
    }
}

impl OutputVerifier for SortedVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let keys = run.outputs.as_ints();
        keys.len() == self.expected_len && keys.windows(2).all(|p| p[0] <= p[1])
    }

    fn describe(&self) -> String {
        format!("{} keys in ascending order", self.expected_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_interp::{Machine, RunConfig};

    /// Runs a tiny SciL program and returns its RunOutput.
    fn run(src: &str) -> RunOutput {
        let m = ipas_lang::compile(src).unwrap();
        Machine::new(&m).run(&RunConfig::default()).unwrap()
    }

    fn emit_floats(vals: &[f64]) -> RunOutput {
        let body: String = vals.iter().map(|v| format!("output_f({v:?});")).collect();
        run(&format!("fn main() -> int {{ {body} return 0; }}"))
    }

    fn emit_ints(vals: &[i64]) -> RunOutput {
        let body: String = vals.iter().map(|v| format!("output_i({v});")).collect();
        run(&format!("fn main() -> int {{ {body} return 0; }}"))
    }

    #[test]
    fn energy_band_accepts_small_jitter() {
        let golden = emit_floats(&[10.0, 10.1, 9.9, 10.05]);
        let v = EnergyVerifier::from_golden(&golden.outputs);
        assert!(v.verify(&emit_floats(&[10.0, 10.05, 9.95, 10.0])));
        // Way outside 3σ of the golden spread: rejected.
        assert!(!v.verify(&emit_floats(&[10.0, 10.1, 9.9, 12.0])));
        // Wrong step count: rejected.
        assert!(!v.verify(&emit_floats(&[10.0, 10.1, 9.9])));
    }

    #[test]
    fn energy_band_has_floor_for_flat_series() {
        let golden = emit_floats(&[5.0, 5.0, 5.0]);
        let v = EnergyVerifier::from_golden(&golden.outputs);
        assert!(v.band() > 0.0);
        assert!(v.verify(&emit_floats(&[5.0, 5.0, 5.0])));
        assert!(!v.verify(&emit_floats(&[5.0, 5.0, 5.1])));
    }

    #[test]
    fn convergence_accepts_only_converged_runs() {
        let v = ConvergenceVerifier::new(1e-6, 100);
        let good = run("fn main() -> int { output_f(0.0000001); output_i(42); return 0; }");
        assert!(v.verify(&good));
        let slow = run("fn main() -> int { output_f(0.0000001); output_i(101); return 0; }");
        assert!(!v.verify(&slow));
        let diverged = run("fn main() -> int { output_f(0.5); output_i(42); return 0; }");
        assert!(!v.verify(&diverged));
        let missing = run("fn main() -> int { output_i(42); return 0; }");
        assert!(!v.verify(&missing));
        let nan =
            run("fn main() -> int { let z: float = 0.0; output_f(z/z); output_i(1); return 0; }");
        assert!(!v.verify(&nan));
    }

    #[test]
    fn l2_norm_accumulates_across_elements() {
        let v = L2Verifier::new(vec![1.0, 2.0, 3.0], 0.1);
        assert!(v.verify(&emit_floats(&[1.0, 2.0, 3.0])));
        assert!(v.verify(&emit_floats(&[1.05, 2.0, 3.05])));
        // Each element off by 0.08: L2 = 0.138 > 0.1.
        assert!(!v.verify(&emit_floats(&[1.08, 2.08, 3.08])));
        assert!(!v.verify(&emit_floats(&[1.0, 2.0])));
    }

    #[test]
    fn sorted_verifier_checks_order_and_length() {
        let v = SortedVerifier::new(4);
        assert!(v.verify(&emit_ints(&[1, 2, 2, 9])));
        assert!(!v.verify(&emit_ints(&[1, 3, 2, 9])));
        assert!(!v.verify(&emit_ints(&[1, 2, 3])));
    }

    #[test]
    fn sorted_verifier_accepts_wrong_but_sorted_values() {
        // Faithful to the paper: IS's check only tests sortedness, so a
        // corrupted-but-sorted output is (correctly) masked.
        let v = SortedVerifier::new(3);
        assert!(v.verify(&emit_ints(&[5, 6, 7])));
    }
}

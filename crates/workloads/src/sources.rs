//! SciL source code of the five workloads.
//!
//! Each program takes its problem size as `main`'s argument (so the
//! input-variation experiment of Figure 9 reuses one compiled module
//! across inputs) and partitions its heavy loops across MPI ranks with
//! the same `lo = rank·n/size` block rule the interpreter's collectives
//! use. Under the serial environment every collective degenerates to the
//! identity.

use crate::Kind;

/// CoMD: Lennard-Jones molecular dynamics.
pub const COMD: &str = r#"
// CoMD mini-app (scaled): Lennard-Jones MD with an O(N^2) cutoff pair
// loop and kick-drift integration, emitting total energy per step.

fn lj_forces(x: [float], y: [float], z: [float],
             fx: [float], fy: [float], fz: [float],
             natoms: int, cutoff2: float, lo: int, hi: int) -> float {
    let pe: float = 0.0;
    for (let i: int = lo; i < hi; i = i + 1) {
        fx[i] = 0.0;
        fy[i] = 0.0;
        fz[i] = 0.0;
    }
    for (let i: int = lo; i < hi; i = i + 1) {
        for (let j: int = 0; j < natoms; j = j + 1) {
            if (j != i) {
                let dx: float = x[i] - x[j];
                let dy: float = y[i] - y[j];
                let dz: float = z[i] - z[j];
                let r2: float = dx * dx + dy * dy + dz * dz;
                if (r2 < cutoff2) {
                    let inv2: float = 1.0 / r2;
                    let inv6: float = inv2 * inv2 * inv2;
                    let ff: float = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
                    fx[i] = fx[i] + ff * dx;
                    fy[i] = fy[i] + ff * dy;
                    fz[i] = fz[i] + ff * dz;
                    // Half of 4*(inv12 - inv6): each pair is visited twice.
                    pe = pe + 2.0 * (inv6 * inv6 - inv6);
                }
            }
        }
    }
    return allreduce_sum_f(pe);
}

fn main(nside: int) -> int {
    let natoms: int = nside * nside * nside;
    let x: [float] = new_float(natoms);
    let y: [float] = new_float(natoms);
    let z: [float] = new_float(natoms);
    let vx: [float] = new_float(natoms);
    let vy: [float] = new_float(natoms);
    let vz: [float] = new_float(natoms);
    let fx: [float] = new_float(natoms);
    let fy: [float] = new_float(natoms);
    let fz: [float] = new_float(natoms);

    // Cubic lattice near the LJ minimum with a deterministic jitter.
    let spacing: float = 1.1225;
    for (let i: int = 0; i < natoms; i = i + 1) {
        let ix: int = i % nside;
        let iy: int = (i / nside) % nside;
        let iz: int = i / (nside * nside);
        x[i] = itof(ix) * spacing + 0.02 * sin(itof(i) * 12.9898);
        y[i] = itof(iy) * spacing + 0.02 * sin(itof(i) * 78.2330);
        z[i] = itof(iz) * spacing + 0.02 * sin(itof(i) * 37.7190);
        vx[i] = 0.1 * sin(itof(i) * 3.17);
        vy[i] = 0.1 * cos(itof(i) * 5.31);
        vz[i] = 0.1 * sin(itof(i) * 7.93);
    }

    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let lo: int = rank * natoms / size;
    let hi: int = (rank + 1) * natoms / size;

    let dt: float = 0.002;
    let cutoff2: float = 6.25;
    let steps: int = 10;
    for (let s: int = 0; s < steps; s = s + 1) {
        let pe: float = lj_forces(x, y, z, fx, fy, fz, natoms, cutoff2, lo, hi);
        let ke: float = 0.0;
        for (let i: int = lo; i < hi; i = i + 1) {
            vx[i] = vx[i] + dt * fx[i];
            vy[i] = vy[i] + dt * fy[i];
            vz[i] = vz[i] + dt * fz[i];
            x[i] = x[i] + dt * vx[i];
            y[i] = y[i] + dt * vy[i];
            z[i] = z[i] + dt * vz[i];
            ke = ke + 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
        }
        allgather_f(x, natoms);
        allgather_f(y, natoms);
        allgather_f(z, natoms);
        let total_ke: float = allreduce_sum_f(ke);
        output_f(total_ke + pe);
    }

    free_arr(x); free_arr(y); free_arr(z);
    free_arr(vx); free_arr(vy); free_arr(vz);
    free_arr(fx); free_arr(fy); free_arr(fz);
    return 0;
}
"#;

/// HPCCG: conjugate gradient on the 7-point 3D Poisson operator.
pub const HPCCG: &str = r#"
// HPCCG mini-app (scaled): matrix-free CG for A x = b on the 7-point
// Poisson stencil, b chosen so that the exact solution is all ones.

fn apply_stencil(p: [float], ap: [float], nx: int, lo: int, hi: int) {
    let nx2: int = nx * nx;
    for (let i: int = lo; i < hi; i = i + 1) {
        let ix: int = i % nx;
        let iy: int = (i / nx) % nx;
        let iz: int = i / nx2;
        let v: float = 6.0 * p[i];
        if (ix > 0) { v = v - p[i - 1]; }
        if (ix < nx - 1) { v = v - p[i + 1]; }
        if (iy > 0) { v = v - p[i - nx]; }
        if (iy < nx - 1) { v = v - p[i + nx]; }
        if (iz > 0) { v = v - p[i - nx2]; }
        if (iz < nx - 1) { v = v - p[i + nx2]; }
        ap[i] = v;
    }
}

fn dot_part(a: [float], b: [float], lo: int, hi: int) -> float {
    let s: float = 0.0;
    for (let i: int = lo; i < hi; i = i + 1) {
        s = s + a[i] * b[i];
    }
    return allreduce_sum_f(s);
}

fn main(nx: int) -> int {
    let n: int = nx * nx * nx;
    let xv: [float] = new_float(n);
    let b: [float] = new_float(n);
    let r: [float] = new_float(n);
    let p: [float] = new_float(n);
    let ap: [float] = new_float(n);
    let ones: [float] = new_float(n);

    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let lo: int = rank * n / size;
    let hi: int = (rank + 1) * n / size;

    for (let i: int = 0; i < n; i = i + 1) {
        ones[i] = 1.0;
        xv[i] = 0.0;
    }
    apply_stencil(ones, b, nx, lo, hi);
    allgather_f(b, n);
    for (let i: int = 0; i < n; i = i + 1) {
        r[i] = b[i];
        p[i] = b[i];
    }

    let rr: float = dot_part(r, r, lo, hi);
    let tol2: float = 1.0e-14;
    let maxit: int = 200;
    let it: int = 0;
    let done: bool = false;
    while (it < maxit && !done) {
        apply_stencil(p, ap, nx, lo, hi);
        let pap: float = dot_part(p, ap, lo, hi);
        let alpha: float = rr / pap;
        for (let i: int = lo; i < hi; i = i + 1) {
            xv[i] = xv[i] + alpha * p[i];
            r[i] = r[i] - alpha * ap[i];
        }
        let rr_new: float = dot_part(r, r, lo, hi);
        let beta: float = rr_new / rr;
        for (let i: int = lo; i < hi; i = i + 1) {
            p[i] = r[i] + beta * p[i];
        }
        allgather_f(p, n);
        rr = rr_new;
        it = it + 1;
        if (rr < tol2) { done = true; }
    }

    // Error against the known exact solution (all ones).
    let e2: float = 0.0;
    for (let i: int = lo; i < hi; i = i + 1) {
        let d: float = xv[i] - 1.0;
        e2 = e2 + d * d;
    }
    let err: float = sqrt(allreduce_sum_f(e2));
    output_f(err);
    output_i(it);

    free_arr(xv); free_arr(b); free_arr(r);
    free_arr(p); free_arr(ap); free_arr(ones);
    return 0;
}
"#;

/// AMG: geometric multigrid V-cycles on 2D Poisson.
pub const AMG: &str = r#"
// AMG solve kernel (scaled): 3-level V-cycles on the 2D 5-point Poisson
// problem with weighted-Jacobi smoothing, cell-averaged restriction,
// and constant prolongation. The fine level is rank-partitioned; the
// coarse levels are computed redundantly on every rank.

fn smooth(u: [float], f: [float], tmp: [float], n: int, sweeps: int,
          lo: int, hi: int, dist: bool) {
    let nn: int = n * n;
    for (let s: int = 0; s < sweeps; s = s + 1) {
        for (let i: int = lo; i < hi; i = i + 1) {
            let ix: int = i % n;
            let iy: int = i / n;
            let nb: float = 0.0;
            if (ix > 0) { nb = nb + u[i - 1]; }
            if (ix < n - 1) { nb = nb + u[i + 1]; }
            if (iy > 0) { nb = nb + u[i - n]; }
            if (iy < n - 1) { nb = nb + u[i + n]; }
            tmp[i] = 0.2 * u[i] + 0.8 * 0.25 * (f[i] + nb);
        }
        if (dist) { allgather_f(tmp, nn); }
        for (let i: int = 0; i < nn; i = i + 1) {
            u[i] = tmp[i];
        }
    }
}

fn residual(u: [float], f: [float], r: [float], n: int, lo: int, hi: int) {
    for (let i: int = lo; i < hi; i = i + 1) {
        let ix: int = i % n;
        let iy: int = i / n;
        let v: float = 4.0 * u[i];
        if (ix > 0) { v = v - u[i - 1]; }
        if (ix < n - 1) { v = v - u[i + 1]; }
        if (iy > 0) { v = v - u[i - n]; }
        if (iy < n - 1) { v = v - u[i + n]; }
        r[i] = f[i] - v;
    }
}

fn restrict_to(r: [float], fc: [float], n: int) {
    // Cell-averaged restriction with the x4 scaling of the rediscretized
    // coarse operator.
    let nc: int = n / 2;
    for (let cy: int = 0; cy < nc; cy = cy + 1) {
        for (let cx: int = 0; cx < nc; cx = cx + 1) {
            let f00: float = r[(2 * cy) * n + 2 * cx];
            let f10: float = r[(2 * cy) * n + 2 * cx + 1];
            let f01: float = r[(2 * cy + 1) * n + 2 * cx];
            let f11: float = r[(2 * cy + 1) * n + 2 * cx + 1];
            fc[cy * nc + cx] = f00 + f10 + f01 + f11;
        }
    }
}

fn prolong_add(u: [float], uc: [float], n: int) {
    let nc: int = n / 2;
    for (let cy: int = 0; cy < nc; cy = cy + 1) {
        for (let cx: int = 0; cx < nc; cx = cx + 1) {
            let v: float = uc[cy * nc + cx];
            u[(2 * cy) * n + 2 * cx] = u[(2 * cy) * n + 2 * cx] + v;
            u[(2 * cy) * n + 2 * cx + 1] = u[(2 * cy) * n + 2 * cx + 1] + v;
            u[(2 * cy + 1) * n + 2 * cx] = u[(2 * cy + 1) * n + 2 * cx] + v;
            u[(2 * cy + 1) * n + 2 * cx + 1] = u[(2 * cy + 1) * n + 2 * cx + 1] + v;
        }
    }
}

fn zero_fill(a: [float], n: int) {
    for (let i: int = 0; i < n; i = i + 1) {
        a[i] = 0.0;
    }
}

fn norm_part(a: [float], lo: int, hi: int) -> float {
    let s: float = 0.0;
    for (let i: int = lo; i < hi; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(allreduce_sum_f(s));
}

fn main(n: int) -> int {
    let nn: int = n * n;
    let n1: int = n / 2;
    let n2: int = n / 4;
    let u0: [float] = new_float(nn);
    let f0: [float] = new_float(nn);
    let r0: [float] = new_float(nn);
    let t0: [float] = new_float(nn);
    let u1: [float] = new_float(n1 * n1);
    let f1: [float] = new_float(n1 * n1);
    let r1: [float] = new_float(n1 * n1);
    let t1: [float] = new_float(n1 * n1);
    let u2: [float] = new_float(n2 * n2);
    let f2: [float] = new_float(n2 * n2);
    let t2: [float] = new_float(n2 * n2);

    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let lo: int = rank * nn / size;
    let hi: int = (rank + 1) * nn / size;

    for (let i: int = 0; i < nn; i = i + 1) {
        u0[i] = 0.0;
        f0[i] = 1.0;
    }
    let fnorm: float = norm_part(f0, lo, hi);

    let tol: float = 1.0e-6;
    let maxcycles: int = 60;
    let cycles: int = 0;
    let rel: float = 1.0;
    while (cycles < maxcycles && rel > tol) {
        // Pre-smooth on the fine grid (distributed).
        smooth(u0, f0, t0, n, 3, lo, hi, true);
        residual(u0, f0, r0, n, lo, hi);
        allgather_f(r0, nn);

        // Level 1 (redundant on all ranks).
        restrict_to(r0, f1, n);
        zero_fill(u1, n1 * n1);
        smooth(u1, f1, t1, n1, 3, 0, n1 * n1, false);
        residual(u1, f1, r1, n1, 0, n1 * n1);

        // Level 2: coarse solve by many sweeps.
        restrict_to(r1, f2, n1);
        zero_fill(u2, n2 * n2);
        smooth(u2, f2, t2, n2, 30, 0, n2 * n2, false);

        // Back up the hierarchy.
        prolong_add(u1, u2, n1);
        smooth(u1, f1, t1, n1, 3, 0, n1 * n1, false);
        prolong_add(u0, u1, n);
        smooth(u0, f0, t0, n, 3, lo, hi, true);

        residual(u0, f0, r0, n, lo, hi);
        rel = norm_part(r0, lo, hi) / fnorm;
        cycles = cycles + 1;
    }

    output_f(rel);
    output_i(cycles);

    free_arr(u0); free_arr(f0); free_arr(r0); free_arr(t0);
    free_arr(u1); free_arr(f1); free_arr(r1); free_arr(t1);
    free_arr(u2); free_arr(f2); free_arr(t2);
    return 0;
}
"#;

/// FFT: radix-2 2D FFT and inverse.
pub const FFT: &str = r#"
// FFT kernel (scaled): 2D radix-2 FFT of an n x n matrix followed by the
// inverse transform; rows are rank-partitioned (ranks must divide n).

fn bit_reverse(v: int, bits: int) -> int {
    let r: int = 0;
    let x: int = v;
    for (let b: int = 0; b < bits; b = b + 1) {
        r = r * 2 + x % 2;
        x = x / 2;
    }
    return r;
}

fn fft_row(re: [float], im: [float], row: int, n: int, bits: int, sign: float) {
    let base: int = row * n;
    for (let i: int = 0; i < n; i = i + 1) {
        let j: int = bit_reverse(i, bits);
        if (j > i) {
            let tr: float = re[base + i];
            re[base + i] = re[base + j];
            re[base + j] = tr;
            let ti: float = im[base + i];
            im[base + i] = im[base + j];
            im[base + j] = ti;
        }
    }
    let len: int = 2;
    while (len <= n) {
        let ang: float = sign * 6.283185307179586 / itof(len);
        let half: int = len / 2;
        for (let start: int = 0; start < n; start = start + len) {
            for (let k: int = 0; k < half; k = k + 1) {
                let wr: float = cos(ang * itof(k));
                let wi: float = sin(ang * itof(k));
                let a: int = base + start + k;
                let bidx: int = a + half;
                let xr: float = re[bidx] * wr - im[bidx] * wi;
                let xi: float = re[bidx] * wi + im[bidx] * wr;
                re[bidx] = re[a] - xr;
                im[bidx] = im[a] - xi;
                re[a] = re[a] + xr;
                im[a] = im[a] + xi;
            }
        }
        len = len * 2;
    }
}

fn transpose(sre: [float], sim: [float], dre: [float], dim: [float], n: int) {
    for (let i: int = 0; i < n; i = i + 1) {
        for (let j: int = 0; j < n; j = j + 1) {
            dre[j * n + i] = sre[i * n + j];
            dim[j * n + i] = sim[i * n + j];
        }
    }
}

fn fft2d(re: [float], im: [float], tr: [float], ti: [float],
         n: int, bits: int, sign: float, rlo: int, rhi: int) {
    let nn: int = n * n;
    for (let r: int = rlo; r < rhi; r = r + 1) {
        fft_row(re, im, r, n, bits, sign);
    }
    allgather_f(re, nn);
    allgather_f(im, nn);
    transpose(re, im, tr, ti, n);
    for (let r: int = rlo; r < rhi; r = r + 1) {
        fft_row(tr, ti, r, n, bits, sign);
    }
    allgather_f(tr, nn);
    allgather_f(ti, nn);
    transpose(tr, ti, re, im, n);
}

fn main(n: int) -> int {
    let nn: int = n * n;
    let bits: int = 0;
    let t: int = 1;
    while (t < n) {
        t = t * 2;
        bits = bits + 1;
    }

    let re: [float] = new_float(nn);
    let im: [float] = new_float(nn);
    let tr: [float] = new_float(nn);
    let ti: [float] = new_float(nn);
    for (let i: int = 0; i < n; i = i + 1) {
        for (let j: int = 0; j < n; j = j + 1) {
            re[i * n + j] = sin(0.7 * itof(i)) * cos(0.3 * itof(j) + 0.5);
            im[i * n + j] = 0.0;
        }
    }

    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let rlo: int = rank * n / size;
    let rhi: int = (rank + 1) * n / size;
    let elo: int = rank * nn / size;
    let ehi: int = (rank + 1) * nn / size;

    let iters: int = 2;
    for (let it: int = 0; it < iters; it = it + 1) {
        fft2d(re, im, tr, ti, n, bits, -1.0, rlo, rhi);
        fft2d(re, im, tr, ti, n, bits, 1.0, rlo, rhi);
        // Normalize the inverse transform.
        let inv: float = 1.0 / itof(nn);
        for (let i: int = elo; i < ehi; i = i + 1) {
            re[i] = re[i] * inv;
            im[i] = im[i] * inv;
        }
        allgather_f(re, nn);
        allgather_f(im, nn);
    }

    if (rank == 0) {
        for (let i: int = 0; i < nn; i = i + 1) {
            output_f(re[i]);
        }
    }

    free_arr(re); free_arr(im); free_arr(tr); free_arr(ti);
    return 0;
}
"#;

/// IS: NPB-style integer (counting) sort.
pub const IS: &str = r#"
// IS benchmark (scaled): counting sort of hash-generated keys; the
// histogram is merged across ranks with an element-wise allreduce.

fn key_hash(i: int, maxkey: int) -> int {
    let h: int = i * 2654435761 % 2147483648;
    h = (h * 1103515245 + 12345) % 2147483648;
    h = (h / 65536) % maxkey;
    return h;
}

fn main(nkeys: int) -> int {
    let maxkey: int = 2048;
    let keys: [int] = new_int(nkeys);
    let counts: [int] = new_int(maxkey);

    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let lo: int = rank * nkeys / size;
    let hi: int = (rank + 1) * nkeys / size;

    for (let k: int = 0; k < maxkey; k = k + 1) {
        counts[k] = 0;
    }
    for (let i: int = lo; i < hi; i = i + 1) {
        keys[i] = key_hash(i, maxkey);
        counts[keys[i]] = counts[keys[i]] + 1;
    }
    allreduce_arr_i(counts, maxkey);

    if (rank == 0) {
        for (let k: int = 0; k < maxkey; k = k + 1) {
            for (let c: int = 0; c < counts[k]; c = c + 1) {
                output_i(k);
            }
        }
    }

    free_arr(keys);
    free_arr(counts);
    return 0;
}
"#;

/// Returns the SciL source of a workload.
pub fn source(kind: Kind) -> &'static str {
    match kind {
        Kind::Comd => COMD,
        Kind::Hpccg => HPCCG,
        Kind::Amg => AMG,
        Kind::Fft => FFT,
        Kind::Is => IS,
    }
}

/// Non-blank, non-comment source lines (the "lines of code" of Table 3).
pub fn lines_of_code(kind: Kind) -> usize {
    source(kind)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile() {
        for kind in Kind::ALL {
            ipas_lang::compile_named(source(kind), kind.name())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn loc_counts_are_positive_and_ordered_sensibly() {
        for kind in Kind::ALL {
            assert!(lines_of_code(kind) > 20, "{}", kind.name());
        }
        // CoMD and AMG are the biggest codes, IS the smallest, loosely
        // mirroring Table 3's ordering.
        assert!(lines_of_code(Kind::Amg) > lines_of_code(Kind::Is));
    }
}

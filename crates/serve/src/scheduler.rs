//! The sharded work-stealing scheduler.
//!
//! Jobs are decomposed into small closures (prepare, plan chunks,
//! finalize) and pushed onto per-shard queues. Each worker thread owns
//! one home shard: it pops its own queue from the front and, when
//! empty, steals from the other shards' backs. Stealing keeps every
//! core busy even when one shard holds a disproportionately expensive
//! job, while the per-shard queues keep the common submit path from
//! funneling through a single lock.
//!
//! The pool is deliberately async-free: plan execution is CPU-bound
//! interpreter work, so threads + condvars beat an executor here, and
//! the whole daemon stays dependency-free.
//!
//! [`Scheduler::drain`] implements the graceful half of shutdown:
//! workers finish the task they are currently running and then exit
//! *without* popping queued tasks. Whatever stays queued is recovered
//! on restart from the `.job` checkpoints and campaign journals.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    shards: Vec<Mutex<VecDeque<Task>>>,
    /// Wakes idle workers on submit and on drain.
    gate: Mutex<()>,
    bell: Condvar,
    draining: AtomicBool,
    next_shard: AtomicUsize,
}

/// Locks a mutex, recovering from poisoning (tasks are panic-isolated
/// upstream, but a poisoned queue must not wedge the daemon).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Inner {
    /// Pops the worker's own shard front, else steals another shard's
    /// back.
    fn grab(&self, home: usize) -> Option<Task> {
        if let Some(task) = lock(&self.shards[home]).pop_front() {
            return Some(task);
        }
        let n = self.shards.len();
        for offset in 1..n {
            if let Some(task) = lock(&self.shards[(home + offset) % n]).pop_back() {
                return Some(task);
            }
        }
        None
    }
}

/// A fixed pool of worker threads over sharded task queues (see module
/// docs).
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("shards", &self.inner.shards.len())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts `threads` workers over `shards` queues (both forced to at
    /// least 1). Worker `w`'s home shard is `w % shards`.
    pub fn new(threads: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            bell: Condvar::new(),
            draining: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    let home = w % inner.shards.len();
                    loop {
                        if inner.draining.load(Ordering::Acquire) {
                            break;
                        }
                        match inner.grab(home) {
                            // Panic isolation: a dying task must not
                            // take its worker thread with it.
                            Some(task) => {
                                let _ =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                            }
                            None => {
                                let guard = lock(&inner.gate);
                                // Re-check under the gate so a submit
                                // racing the empty check cannot strand
                                // its wake-up; the timeout bounds any
                                // remaining miss.
                                if inner.draining.load(Ordering::Acquire) {
                                    break;
                                }
                                let _ = inner.bell.wait_timeout(guard, Duration::from_millis(50));
                            }
                        }
                    }
                })
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a task on the next shard round-robin.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed);
        self.submit_to(shard, task);
    }

    /// Enqueues a task on a specific shard (callers distribute a job's
    /// chunks across shards so every worker gets stealable pieces).
    pub fn submit_to(&self, shard: usize, task: impl FnOnce() + Send + 'static) {
        let n = self.inner.shards.len();
        lock(&self.inner.shards[shard % n]).push_back(Box::new(task));
        self.inner.bell.notify_one();
    }

    /// Tasks currently queued (not the ones being executed).
    pub fn queued(&self) -> usize {
        self.inner.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Graceful drain: workers finish their in-flight task, leave the
    /// queues untouched, and exit. Returns the number of tasks left
    /// queued. Idempotent; safe to call once at shutdown.
    pub fn drain(&self) -> usize {
        self.inner.draining.store(true, Ordering::Release);
        {
            let _guard = lock(&self.inner.gate);
            self.inner.bell.notify_all();
        }
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
        self.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_submitted_tasks() {
        let pool = Scheduler::new(4, 2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 64 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 64);
        assert_eq!(pool.drain(), 0);
    }

    #[test]
    fn steals_across_shards() {
        // All tasks land on shard 0; with 4 workers homed across 2
        // shards, finishing 8 × 30ms of work in well under 8 × 30ms
        // proves shard-1 workers stole shard-0 tasks.
        let pool = Scheduler::new(4, 2);
        let done = Arc::new(AtomicUsize::new(0));
        let start = std::time::Instant::now();
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit_to(0, move || {
                std::thread::sleep(Duration::from_millis(30));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        while done.load(Ordering::SeqCst) < 8 {
            assert!(start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            start.elapsed() < Duration::from_millis(8 * 30),
            "no stealing: tasks ran serially on one shard"
        );
        pool.drain();
    }

    #[test]
    fn drain_finishes_in_flight_but_leaves_queue() {
        let pool = Scheduler::new(1, 1);
        let done = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let done = Arc::clone(&done);
            let started = Arc::clone(&started);
            pool.submit(move || {
                started.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(40));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Let the single worker pick up the first task, then drain.
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let left = pool.drain();
        // The in-flight task completed; queued ones were not popped.
        assert_eq!(done.load(Ordering::SeqCst), started.load(Ordering::SeqCst));
        assert!(left >= 1, "drain must leave queued tasks for restart");
        assert_eq!(left, 6 - started.load(Ordering::SeqCst));
    }

    #[test]
    fn panicking_task_does_not_kill_the_pool() {
        let pool = Scheduler::new(2, 2);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("task died"));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
        pool.drain();
    }
}

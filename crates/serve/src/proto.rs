//! The wire protocol: newline-delimited flat JSON over a Unix socket.
//!
//! One request per connection. The client sends a single line; the
//! daemon answers with one line (`status`, `ok`, `error`, `stats`) or,
//! for streaming requests (`submit` with `watch`, `watch`), a sequence
//! of event lines terminated by a `result` or `failed` line. Every
//! line uses the same flat-JSON codec as the campaign journal
//! ([`ipas_store::LineBuilder`] / [`ipas_store::Fields`]), so journal
//! records can be forwarded to subscribers verbatim.
//!
//! Request kinds:
//!
//! | kind       | fields                               |
//! |------------|--------------------------------------|
//! | `submit`   | a full [`JobSpec`] (+ `watch`: 0/1)  |
//! | `status`   | `id`                                 |
//! | `watch`    | `id`                                 |
//! | `cancel`   | `id`                                 |
//! | `stats`    | —                                    |
//! | `shutdown` | —                                    |

use ipas_core::jobspec::JobSpec;
use ipas_store::{Fields, LineBuilder};

use crate::job::Progress;

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Submit a job; with `watch` the connection stays open and streams
    /// the job's events through its terminal line.
    Submit {
        /// The work description.
        spec: JobSpec,
        /// Stream events instead of returning after the ack.
        watch: bool,
    },
    /// One-line progress snapshot for a job id.
    Status(String),
    /// Stream an existing job's events from the beginning.
    Watch(String),
    /// Request cooperative cancellation of a job id.
    Cancel(String),
    /// Daemon-wide counters.
    Stats,
    /// Graceful shutdown: drain in-flight chunks, checkpoint the rest.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable reason suitable for an [`error_line`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = Fields::parse(line).ok_or("malformed request line")?;
    let id = |fields: &Fields| {
        fields
            .str("id")
            .map(str::to_string)
            .ok_or_else(|| "missing field \"id\"".to_string())
    };
    match fields.kind() {
        "submit" => Ok(Request::Submit {
            spec: JobSpec::decode(line, "submit")?,
            watch: fields.num("watch") == Some(1),
        }),
        "status" => Ok(Request::Status(id(&fields)?)),
        "watch" => Ok(Request::Watch(id(&fields)?)),
        "cancel" => Ok(Request::Cancel(id(&fields)?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request kind {other:?}")),
    }
}

/// Builds a request line for simple id-addressed requests.
pub fn id_request_line(kind: &str, id: &str) -> String {
    LineBuilder::new(kind).str("id", id).finish()
}

/// Builds a bare request line (`stats`, `shutdown`).
pub fn bare_request_line(kind: &str) -> String {
    LineBuilder::new(kind).finish()
}

/// The daemon's error response.
pub fn error_line(reason: &str) -> String {
    LineBuilder::new("error").str("reason", reason).finish()
}

/// The daemon's submit acknowledgement. `coalesced` reports whether the
/// spec deduplicated onto an already-known job.
pub fn accepted_line(id: &str, state: &str, coalesced: bool) -> String {
    LineBuilder::new("accepted")
        .str("id", id)
        .str("state", state)
        .num("coalesced", u64::from(coalesced))
        .finish()
}

/// The daemon's status response (also used as the `ok` body for
/// cancel).
pub fn status_line(id: &str, progress: &Progress) -> String {
    let mut b = LineBuilder::new("status")
        .str("id", id)
        .str("state", progress.state.label())
        .num("executed", progress.executed as u64)
        .num("total", progress.total as u64)
        .num("resumed", progress.resumed as u64);
    if let Some(error) = &progress.error {
        b = b.str("error", error);
    }
    b.finish()
}

/// The daemon-wide counters response.
pub fn stats_line(jobs: u64, executed_runs: u64, queued: u64) -> String {
    LineBuilder::new("stats")
        .num("jobs", jobs)
        .num("executed_runs", executed_runs)
        .num("queued", queued)
        .finish()
}

/// A live progress event pushed into a job's event log.
pub fn progress_event(executed: usize, total: usize, resumed: usize) -> String {
    LineBuilder::new("progress")
        .num("executed", executed as u64)
        .num("total", total as u64)
        .num("resumed", resumed as u64)
        .finish()
}

/// The terminal success event. The artifact payload (summary text,
/// protected IR, model listing) rides in `payload`; the codec escapes
/// newlines, so multi-line payloads stay one event line.
pub fn result_event(id: &str, payload: &str) -> String {
    LineBuilder::new("result")
        .str("id", id)
        .str("payload", payload)
        .finish()
}

/// The terminal failure event.
pub fn failed_event(id: &str, reason: &str) -> String {
    LineBuilder::new("failed")
        .str("id", id)
        .str("reason", reason)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use ipas_core::jobspec::JobKind;

    #[test]
    fn parses_each_request_kind() {
        let spec = JobSpec::new(
            JobKind::Campaign,
            "t",
            "wl",
            "fn main() -> int { output_i(1); return 0; }",
        );
        let mut line = spec.encode("submit");
        assert!(matches!(
            parse_request(&line).unwrap(),
            Request::Submit { watch: false, .. }
        ));
        line = line.trim_end().to_string();
        line.truncate(line.len() - 1);
        line.push_str(",\"watch\":1}");
        assert!(matches!(
            parse_request(&line).unwrap(),
            Request::Submit { watch: true, .. }
        ));
        assert!(matches!(
            parse_request(&id_request_line("status", "ab12")).unwrap(),
            Request::Status(id) if id == "ab12"
        ));
        assert!(matches!(
            parse_request(&id_request_line("watch", "ab12")).unwrap(),
            Request::Watch(_)
        ));
        assert!(matches!(
            parse_request(&id_request_line("cancel", "ab12")).unwrap(),
            Request::Cancel(_)
        ));
        assert!(matches!(
            parse_request(&bare_request_line("stats")).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(&bare_request_line("shutdown")).unwrap(),
            Request::Shutdown
        ));
        assert!(parse_request("garbage").is_err());
        assert!(parse_request(&bare_request_line("reboot")).is_err());
    }

    #[test]
    fn response_lines_round_trip_through_fields() {
        let progress = Progress {
            state: JobState::Running,
            executed: 5,
            total: 12,
            resumed: 3,
            error: None,
        };
        let line = status_line("abcd", &progress);
        let fields = Fields::parse(&line).unwrap();
        assert_eq!(fields.kind(), "status");
        assert_eq!(fields.str("state"), Some("running"));
        assert_eq!(fields.num("executed"), Some(5));
        assert_eq!(fields.num("resumed"), Some(3));

        let multi = "line one\nline two\n";
        let fields = Fields::parse(&result_event("abcd", multi)).unwrap();
        assert_eq!(fields.str("payload"), Some(multi), "payload newline-safe");

        let fields = Fields::parse(&accepted_line("abcd", "queued", true)).unwrap();
        assert_eq!(fields.num("coalesced"), Some(1));
    }
}

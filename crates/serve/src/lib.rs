//! `ipas-serve`: the campaign service — an async-free daemon that
//! accepts protect/train/campaign/eval jobs over a Unix-domain socket
//! and executes them on a sharded work-stealing worker pool.
//!
//! The protection pipeline's stages are deterministic functions of
//! their inputs, which makes a *service* the natural deployment shape:
//! many clients (CI runs, sweeps, notebooks) submit work described by
//! serializable [`ipas_core::jobspec::JobSpec`]s, identical requests
//! coalesce onto one execution, and every artifact lands once in a
//! shared content-addressed store with per-tenant registries and
//! quotas.
//!
//! Layers:
//!
//! - [`scheduler`] — threads + sharded deques + stealing; no async
//!   runtime, no dependencies;
//! - [`job`] — deduplicated job state and the replayable [`job::EventLog`]
//!   every subscriber reads (which is what makes concurrent identical
//!   submissions byte-identical);
//! - [`proto`] — newline-delimited flat JSON over the socket, sharing
//!   the campaign journal's codec so journal records stream to clients
//!   verbatim;
//! - [`server`] — the daemon: prepare/chunk/finalize tasks, `.job`
//!   checkpoints, journal-backed restart-resume, graceful drain on
//!   `SIGTERM`;
//! - [`client`] — the `ipas client` side: submit/status/watch/cancel/
//!   stats/shutdown.

#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod proto;
pub mod scheduler;
pub mod server;

pub use client::{Client, JobOutcome};
pub use job::{EventLog, Job, JobState, Progress};
pub use proto::Request;
pub use scheduler::Scheduler;
pub use server::{run_daemon, DaemonConfig, DaemonReport};

use std::path::PathBuf;

/// Errors surfaced by the daemon setup and the client.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or socket I/O failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The artifact store could not be opened.
    Store(String),
    /// The daemon refused the request (bad spec, quota, unknown job).
    Refused(String),
    /// The job executed and failed; the reason came over the wire.
    JobFailed(String),
    /// The peer sent something outside the protocol.
    Protocol(String),
}

impl ServeError {
    pub(crate) fn io(path: PathBuf, error: std::io::Error) -> Self {
        ServeError::Io { path, error }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            ServeError::Store(e) => write!(f, "artifact store: {e}"),
            ServeError::Refused(reason) => write!(f, "refused: {reason}"),
            ServeError::JobFailed(reason) => write!(f, "job failed: {reason}"),
            ServeError::Protocol(reason) => write!(f, "protocol error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

//! Client side of the serve protocol: one request per connection.
//!
//! Streaming calls split their output: artifact payloads go to the
//! `out` writer (stdout in the CLI) byte-for-byte, progress and journal
//! events go to the `log` writer (stderr), so piping a protected module
//! straight into a file works.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

use ipas_core::jobspec::JobSpec;
use ipas_store::Fields;

use crate::proto;
use crate::ServeError;

/// A client handle bound to a daemon socket path.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

/// Outcome of a streaming call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job id the daemon assigned (deterministic per spec).
    pub id: String,
    /// Whether the submission coalesced onto an existing job.
    pub coalesced: bool,
}

impl Client {
    /// Binds a client to `socket` (no connection is made yet).
    pub fn new(socket: impl AsRef<Path>) -> Self {
        Client {
            socket: socket.as_ref().to_path_buf(),
        }
    }

    fn connect(&self) -> Result<(BufReader<UnixStream>, UnixStream), ServeError> {
        let stream = UnixStream::connect(&self.socket)
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::io(self.socket.clone(), e))?,
        );
        Ok((reader, stream))
    }

    /// Sends one request line and reads one response line.
    fn round_trip(&self, request: &str) -> Result<String, ServeError> {
        let (mut reader, mut writer) = self.connect()?;
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        check_error(&line)?;
        Ok(line)
    }

    /// Submits a job. With `watch`, streams events until the job ends:
    /// the result payload goes to `out`, everything else to `log`.
    ///
    /// # Errors
    ///
    /// Connection failures, daemon refusals, and job failures.
    pub fn submit(
        &self,
        spec: &JobSpec,
        watch: bool,
        out: &mut impl Write,
        log: &mut impl Write,
    ) -> Result<JobOutcome, ServeError> {
        let mut request = spec.encode("submit");
        if watch {
            // Splice the watch flag into the submit line.
            request.truncate(request.trim_end().len() - 1);
            request.push_str(",\"watch\":1}\n");
        }
        let (mut reader, mut writer) = self.connect()?;
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        check_error(&line)?;
        let ack = Fields::parse(line.trim_end())
            .filter(|f| f.kind() == "accepted")
            .ok_or_else(|| ServeError::Protocol(format!("unexpected ack {line:?}")))?;
        let outcome = JobOutcome {
            id: ack
                .str("id")
                .ok_or_else(|| ServeError::Protocol("ack without id".into()))?
                .to_string(),
            coalesced: ack.num("coalesced") == Some(1),
        };
        if watch {
            stream_to_end(&mut reader, out, log)?;
        }
        Ok(outcome)
    }

    /// One-line progress snapshot for a job id.
    ///
    /// # Errors
    ///
    /// Connection failures and unknown-job refusals.
    pub fn status(&self, id: &str) -> Result<String, ServeError> {
        self.round_trip(&proto::id_request_line("status", id))
    }

    /// Streams an existing job's events from the beginning (replay +
    /// live) until it ends.
    ///
    /// # Errors
    ///
    /// Connection failures, unknown-job refusals, and job failures.
    pub fn watch(
        &self,
        id: &str,
        out: &mut impl Write,
        log: &mut impl Write,
    ) -> Result<(), ServeError> {
        let (mut reader, mut writer) = self.connect()?;
        writer
            .write_all(proto::id_request_line("watch", id).as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| ServeError::io(self.socket.clone(), e))?;
        stream_to_end(&mut reader, out, log)
    }

    /// Requests cancellation; returns the post-cancel status line.
    ///
    /// # Errors
    ///
    /// Connection failures and unknown-job refusals.
    pub fn cancel(&self, id: &str) -> Result<String, ServeError> {
        self.round_trip(&proto::id_request_line("cancel", id))
    }

    /// Daemon-wide counters line.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn stats(&self) -> Result<String, ServeError> {
        self.round_trip(&proto::bare_request_line("stats"))
    }

    /// Asks the daemon to shut down gracefully; returns its final
    /// counters line.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn shutdown(&self) -> Result<String, ServeError> {
        self.round_trip(&proto::bare_request_line("shutdown"))
    }
}

fn check_error(line: &str) -> Result<(), ServeError> {
    if let Some(fields) = Fields::parse(line.trim_end()) {
        if fields.kind() == "error" {
            return Err(ServeError::Refused(
                fields.str("reason").unwrap_or("unknown").to_string(),
            ));
        }
    }
    Ok(())
}

/// Reads event lines until the stream ends, demultiplexing payload vs
/// progress. Returns an error when the job failed or the stream ended
/// without a terminal event.
fn stream_to_end(
    reader: &mut impl BufRead,
    out: &mut impl Write,
    log: &mut impl Write,
) -> Result<(), ServeError> {
    let io = |e: std::io::Error| ServeError::Protocol(format!("stream failed: {e}"));
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(io)? == 0 {
            // EOF before a `result`/`failed` event: the daemon died (or
            // dropped the connection) mid-stream. Surfacing an error
            // here is what keeps a truncated event log from passing for
            // a finished job.
            return Err(ServeError::Protocol(
                "daemon closed the stream before the job finished; \
                 the event log above is truncated, not complete"
                    .into(),
            ));
        }
        let Some(fields) = Fields::parse(line.trim_end()) else {
            continue;
        };
        match fields.kind() {
            "result" => {
                out.write_all(fields.str("payload").unwrap_or_default().as_bytes())
                    .map_err(io)?;
                return Ok(());
            }
            "failed" => {
                return Err(ServeError::JobFailed(
                    fields.str("reason").unwrap_or("unknown").to_string(),
                ));
            }
            "error" => {
                return Err(ServeError::Refused(
                    fields.str("reason").unwrap_or("unknown").to_string(),
                ));
            }
            _ => {
                log.write_all(line.as_bytes()).map_err(io)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn truncated_streams_error_instead_of_passing_for_complete() {
        // A daemon that dies mid-job leaves the watcher with progress
        // events but no terminal `result`/`failed` line.
        let partial = "{\"kind\":\"progress\",\"executed\":8,\"total\":64,\"resumed\":0}\n\
                       {\"kind\":\"outcome\",\"plan\":0,\"out\":\"masked\"}\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        let err = stream_to_end(&mut Cursor::new(partial), &mut out, &mut log)
            .expect_err("truncated stream must not look finished");
        match err {
            ServeError::Protocol(reason) => {
                assert!(reason.contains("truncated"), "unhelpful message: {reason}");
                assert!(
                    reason.contains("before the job finished"),
                    "unhelpful message: {reason}"
                );
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        assert!(out.is_empty(), "no payload was emitted");
        assert_eq!(
            String::from_utf8(log).unwrap().lines().count(),
            2,
            "the partial events still reach the log"
        );
    }

    #[test]
    fn complete_streams_split_payload_from_log() {
        let full = "{\"kind\":\"progress\",\"executed\":64,\"total\":64,\"resumed\":0}\n\
                    {\"kind\":\"result\",\"id\":\"ab\",\"payload\":\"summary text\"}\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        stream_to_end(&mut Cursor::new(full), &mut out, &mut log).expect("stream completes");
        assert_eq!(out, b"summary text");
        assert!(String::from_utf8(log).unwrap().contains("progress"));
    }
}

//! Job state shared between the daemon's execution tasks and its
//! connection handlers.
//!
//! A [`Job`] is one deduplicated unit of work. Every subscriber —
//! the submitting client, later identical submissions that coalesced
//! onto it, `watch` connections — reads the same [`EventLog`], so all
//! of them observe a byte-identical stream: replayed history first,
//! then live events, closed by a terminal `result` or `failed` line.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use ipas_core::jobspec::JobSpec;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, checkpointed, waiting for a worker.
    Queued,
    /// At least one chunk has started executing.
    Running,
    /// Finished; the result event holds the artifact payload.
    Done,
    /// Terminated with an error (recorded in [`Progress::error`]).
    Failed,
    /// Canceled by a client before completion.
    Canceled,
}

impl JobState {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Whether the job will make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// Mutable progress snapshot of a job.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Current lifecycle state.
    pub state: JobState,
    /// Plans executed by *this* daemon process.
    pub executed: usize,
    /// Total plans of the campaign (0 until prepared).
    pub total: usize,
    /// Plans recovered from the checkpoint journal instead of being
    /// re-executed.
    pub resumed: usize,
    /// Failure reason when [`JobState::Failed`].
    pub error: Option<String>,
}

/// An append-only, replayable event stream with blocking reads.
///
/// Writers push newline-terminated flat-JSON lines; readers poll
/// [`EventLog::next`] with their own cursor, blocking for live events
/// until the log is closed. History is never discarded, so a late
/// subscriber replays the identical stream an early one saw.
#[derive(Debug, Default)]
pub struct EventLog {
    lines: Mutex<(Vec<String>, bool)>,
    bell: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl EventLog {
    /// Appends one event line (must be newline-terminated) and wakes
    /// blocked readers. Ignored after close.
    pub fn push(&self, line: String) {
        let mut guard = lock(&self.lines);
        if !guard.1 {
            guard.0.push(line);
            self.bell.notify_all();
        }
    }

    /// Closes the log: readers drain the remaining history and then see
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        lock(&self.lines).1 = true;
        self.bell.notify_all();
    }

    /// Returns the event at `cursor`, blocking while the log is open
    /// and the cursor is at the tip. `None` means the log closed and
    /// history is exhausted.
    pub fn next(&self, cursor: usize) -> Option<String> {
        let mut guard = lock(&self.lines);
        loop {
            if cursor < guard.0.len() {
                return Some(guard.0[cursor].clone());
            }
            if guard.1 {
                return None;
            }
            guard = self.bell.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of events currently in the log.
    pub fn len(&self) -> usize {
        lock(&self.lines).0.len()
    }

    /// Whether the log has no events yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One deduplicated job: its immutable spec plus shared mutable state.
#[derive(Debug)]
pub struct Job {
    /// Deterministic id ([`JobSpec::job_id`]); the dedup key.
    pub id: String,
    /// The work description.
    pub spec: JobSpec,
    /// Mutable progress, behind a lock.
    pub progress: Mutex<Progress>,
    /// The shared subscriber stream.
    pub events: EventLog,
    /// Cooperative cancellation flag checked by chunk tasks.
    pub cancel: AtomicBool,
}

impl Job {
    /// Creates a queued job for `spec`.
    pub fn new(spec: JobSpec) -> Self {
        Job {
            id: spec.job_id(),
            spec,
            progress: Mutex::new(Progress {
                state: JobState::Queued,
                executed: 0,
                total: 0,
                resumed: 0,
                error: None,
            }),
            events: EventLog::default(),
            cancel: AtomicBool::new(false),
        }
    }

    /// Snapshot of the current progress.
    pub fn progress(&self) -> Progress {
        lock(&self.progress).clone()
    }

    /// Mutates progress under the lock.
    pub fn update<R>(&self, f: impl FnOnce(&mut Progress) -> R) -> R {
        f(&mut lock(&self.progress))
    }

    /// Whether cancellation was requested.
    pub fn canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Requests cancellation (chunks drain cooperatively).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_core::jobspec::{JobKind, JobSpec};

    fn spec() -> JobSpec {
        JobSpec::new(
            JobKind::Campaign,
            "t",
            "wl",
            "fn main() -> int { output_i(1); return 0; }",
        )
    }

    #[test]
    fn event_log_replays_history_to_late_readers() {
        let log = EventLog::default();
        log.push("a\n".to_string());
        log.push("b\n".to_string());
        log.close();
        log.push("after-close\n".to_string());
        assert_eq!(log.next(0).as_deref(), Some("a\n"));
        assert_eq!(log.next(1).as_deref(), Some("b\n"));
        assert_eq!(log.next(2), None);
    }

    #[test]
    fn event_log_blocks_until_pushed_or_closed() {
        let log = EventLog::default();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| (log.next(0), log.next(1)));
            std::thread::sleep(std::time::Duration::from_millis(20));
            log.push("live\n".to_string());
            log.close();
            let (first, second) = reader.join().unwrap();
            assert_eq!(first.as_deref(), Some("live\n"));
            assert_eq!(second, None);
        });
    }

    #[test]
    fn job_ids_and_state_transitions() {
        let job = Job::new(spec());
        assert_eq!(job.id, spec().job_id());
        assert_eq!(job.progress().state, JobState::Queued);
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        job.update(|p| p.state = JobState::Done);
        assert_eq!(job.progress().state, JobState::Done);
        assert!(!job.canceled());
        job.request_cancel();
        assert!(job.canceled());
    }
}

//! The `ipas serve` daemon: accepts jobs over a Unix-domain socket and
//! executes them on the sharded work-stealing scheduler.
//!
//! # Job lifecycle
//!
//! A `submit` request deduplicates on [`JobSpec::job_id`] (a
//! fingerprint of every artifact-determining field). New jobs are
//! checkpointed as a `.job` file *before* they are acknowledged, so a
//! crash or graceful shutdown never loses an accepted job. Execution is
//! three task shapes on the scheduler:
//!
//! 1. **prepare** — compile the source, build the workload, pre-draw
//!    the full injection plan list, open the campaign journal (resuming
//!    completed plan indices from a previous daemon process), and split
//!    the pending indices into chunks distributed across shards;
//! 2. **chunk** — execute a slice of plans on a private
//!    [`PlanExecutor`], append the outcomes to the journal in one
//!    atomic-at-EOF write, and stream them to subscribers;
//! 3. **finalize** — assemble the [`ipas_faultsim::CampaignResult`]
//!    in plan order (chunk scheduling is invisible: plans were
//!    pre-drawn from one seeded RNG), build the job's artifact, store
//!    it, and emit the terminal `result` event.
//!
//! # Restart-resume
//!
//! On startup the daemon re-enqueues every leftover `.job` checkpoint.
//! The campaign journal doubles as the work cache: plan indices already
//! journaled are never re-executed, and a job whose journal is complete
//! skips straight to finalize with zero injections. Terminal states
//! (done, failed, canceled) delete the checkpoint.
//!
//! # Shutdown
//!
//! `SIGTERM`/`SIGINT` (or a `shutdown` request) stop the accept loop,
//! drain in-flight chunks (queued tasks are abandoned — their `.job`
//! files and journals survive), and close all event logs so watchers
//! disconnect cleanly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use ipas_analysis::sections::SectionPartition;
use ipas_core::adaptive::{AdaptiveDriver, AdaptiveParams};
use ipas_core::classifier::{train_top_configs, TrainedClassifier};
use ipas_core::experiment::memoized_protect;
use ipas_core::jobspec::{JobKind, JobSpec};
use ipas_core::memo::{
    campaign_fingerprint, dataset_from_artifact, memoized_models, summary_fingerprint,
    training_fingerprint, training_set_artifact,
};
use ipas_core::policy::ProtectionPolicy;
use ipas_core::training::LabelKind;
use ipas_faultsim::sections::assign_sections;
use ipas_faultsim::{
    draw_plans, outcome_line_in_section, CampaignConfig, CampaignJournal, CampaignOptions,
    CampaignResult, CompiledProgram, Engine, Injection, InjectionRecord, JournalHeader, Outcome,
    PlanExecutor, PlanOutcome, ResumeState, Workload,
};
use ipas_store::{
    ArtifactKind, CampaignSummary, Fingerprint, Key, ProtectedModule, SingleFlight, Store,
    TrainingSet,
};
use ipas_svm::GridOptions;

use crate::job::{Job, JobState};
use crate::proto::{self, Request};
use crate::scheduler::Scheduler;
use crate::ServeError;

/// Configuration of one daemon process.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path (created on start, removed on exit).
    pub socket: PathBuf,
    /// State directory: `jobs/` checkpoints, `journals/`, `store/`.
    pub state_dir: PathBuf,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Scheduler shards (0 = one per worker).
    pub shards: usize,
    /// Plans per stealable chunk.
    pub chunk: usize,
    /// Max injection runs a tenant may submit per daemon lifetime
    /// (0 = unlimited).
    pub quota_runs: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("ipas-serve.sock"),
            state_dir: PathBuf::from("ipas-serve-state"),
            threads: 0,
            shards: 0,
            chunk: 32,
            quota_runs: 0,
        }
    }
}

/// What a daemon did before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonReport {
    /// Jobs accepted (including restored checkpoints).
    pub jobs: u64,
    /// Injection runs actually executed by this process (journal
    /// resumes excluded).
    pub executed_runs: u64,
    /// Scheduler tasks abandoned at drain (recoverable on restart).
    pub abandoned_tasks: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Process-wide signal latch. The handler only stores a flag; the
/// accept loop polls it.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        // From the C runtime; avoids a libc crate dependency. The
        // handler address is passed as a plain machine word.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Everything chunk tasks of one running job share.
struct RunCtx {
    job: Arc<Job>,
    workload: Workload,
    compiled: Option<CompiledProgram>,
    /// Every plan drawn so far. Classic jobs draw the full list during
    /// prepare; adaptive jobs ([`JobSpec::adaptive`]) grow it round by
    /// round, so reads go through the lock.
    plans: Mutex<Vec<Injection>>,
    /// Section id per plan for sectional jobs ([`JobSpec::sections`]):
    /// chunks then align to section boundaries and journal records
    /// carry section tags.
    assignment: Option<Vec<u32>>,
    /// The round planner for adaptive jobs: between rounds it retrains
    /// on the labels so far and draws the next margin-weighted round.
    adaptive: Option<Mutex<AdaptiveDriver>>,
    /// Round size for adaptive jobs; plan `i` belongs to round
    /// `i / round_runs` (only the final round can be short).
    round_runs: Option<usize>,
    /// One slot per *possible* plan (`config.runs`); adaptive jobs that
    /// stop early leave the tail untouched and finalize over
    /// `plans.len()` only.
    slots: Vec<Mutex<Option<PlanOutcome>>>,
    journal: CampaignJournal,
    remaining_chunks: AtomicUsize,
    config: CampaignConfig,
    options: CampaignOptions,
}

struct Daemon {
    config: DaemonConfig,
    store: Store,
    flight: SingleFlight,
    scheduler: Scheduler,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    /// Injection runs charged per tenant this process lifetime.
    quota_used: Mutex<HashMap<String, u64>>,
    accepted: AtomicU64,
    executed_runs: AtomicU64,
    shutdown: AtomicBool,
}

impl Daemon {
    fn new(config: DaemonConfig) -> Result<Arc<Daemon>, ServeError> {
        for sub in ["jobs", "journals", "store"] {
            std::fs::create_dir_all(config.state_dir.join(sub))
                .map_err(|e| ServeError::io(config.state_dir.join(sub), e))?;
        }
        let store = Store::open(config.state_dir.join("store"))
            .map_err(|e| ServeError::Store(e.to_string()))?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            config.threads
        };
        let shards = if config.shards == 0 {
            threads
        } else {
            config.shards
        };
        Ok(Arc::new(Daemon {
            scheduler: Scheduler::new(threads, shards),
            store,
            flight: SingleFlight::new(),
            jobs: Mutex::new(HashMap::new()),
            quota_used: Mutex::new(HashMap::new()),
            accepted: AtomicU64::new(0),
            executed_runs: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            config,
        }))
    }

    fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join("jobs").join(format!("{id}.job"))
    }

    fn journal_path(&self, id: &str) -> PathBuf {
        self.config
            .state_dir
            .join("journals")
            .join(format!("{id}.jsonl"))
    }

    /// Writes the `.job` checkpoint atomically (tmp + rename).
    fn write_checkpoint(&self, spec: &JobSpec) -> Result<(), ServeError> {
        let path = self.checkpoint_path(&spec.job_id());
        let tmp = path.with_extension("job.tmp");
        std::fs::write(&tmp, spec.encode("jobspec"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| ServeError::io(path, e))
    }

    fn remove_checkpoint(&self, id: &str) {
        let _ = std::fs::remove_file(self.checkpoint_path(id));
    }

    /// Charges a tenant's quota; `Err` carries the refusal reason.
    fn charge_quota(&self, tenant: &str, runs: u64) -> Result<(), String> {
        if self.config.quota_runs == 0 {
            return Ok(());
        }
        let mut used = lock(&self.quota_used);
        let entry = used.entry(tenant.to_string()).or_insert(0);
        if *entry + runs > self.config.quota_runs {
            return Err(format!(
                "quota exhausted for tenant {tenant:?}: {} of {} runs used, {runs} requested",
                *entry, self.config.quota_runs
            ));
        }
        *entry += runs;
        Ok(())
    }

    /// Registers `spec` as a new job, or returns the existing one it
    /// deduplicates onto. Err means the submission was refused.
    fn admit(self: &Arc<Daemon>, spec: JobSpec, charge: bool) -> Result<(Arc<Job>, bool), String> {
        let id = spec.job_id();
        let mut jobs = lock(&self.jobs);
        if let Some(existing) = jobs.get(&id) {
            return Ok((Arc::clone(existing), true));
        }
        if charge {
            self.charge_quota(&spec.tenant, spec.campaign_config().runs as u64)?;
        }
        self.write_checkpoint(&spec).map_err(|e| e.to_string())?;
        let job = Arc::new(Job::new(spec));
        jobs.insert(id, Arc::clone(&job));
        drop(jobs);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let daemon = Arc::clone(self);
        let queued = Arc::clone(&job);
        self.scheduler.submit(move || daemon.prepare(queued));
        Ok((job, false))
    }

    /// Re-enqueues every leftover `.job` checkpoint from a previous
    /// daemon process.
    fn restore_checkpoints(self: &Arc<Daemon>) -> Result<usize, ServeError> {
        let dir = self.config.state_dir.join("jobs");
        let mut restored = 0;
        let entries = std::fs::read_dir(&dir).map_err(|e| ServeError::io(dir.clone(), e))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "job").unwrap_or(false))
            .collect();
        paths.sort();
        for path in paths {
            let text =
                std::fs::read_to_string(&path).map_err(|e| ServeError::io(path.clone(), e))?;
            match JobSpec::decode(text.trim_end_matches('\n'), "jobspec") {
                Ok(spec) => {
                    // Quota is re-charged: the ledger is per-process.
                    if self.admit(spec, true).is_ok() {
                        restored += 1;
                    }
                }
                // A corrupt checkpoint is dropped rather than wedging
                // startup forever.
                Err(_) => {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(restored)
    }

    fn fail(&self, job: &Job, reason: String) {
        job.update(|p| {
            p.state = JobState::Failed;
            p.error = Some(reason.clone());
        });
        job.events.push(proto::failed_event(&job.id, &reason));
        job.events.close();
        self.remove_checkpoint(&job.id);
    }

    fn finish_canceled(&self, job: &Job) {
        job.update(|p| p.state = JobState::Canceled);
        job.events
            .push(proto::failed_event(&job.id, "canceled by client"));
        job.events.close();
        self.remove_checkpoint(&job.id);
    }

    /// Task 1: build the run context and dispatch chunks.
    fn prepare(self: Arc<Daemon>, job: Arc<Job>) {
        if job.canceled() {
            self.finish_canceled(&job);
            return;
        }
        match self.prepare_ctx(&job) {
            Ok(ctx) if ctx.adaptive.is_some() => self.advance_round(ctx),
            Ok(ctx) => self.dispatch_chunks(ctx),
            Err(reason) => self.fail(&job, reason),
        }
    }

    fn prepare_ctx(&self, job: &Arc<Job>) -> Result<Arc<RunCtx>, String> {
        let spec = &job.spec;
        let module =
            ipas_lang::compile(&spec.source).map_err(|e| format!("compile failed: {e}"))?;
        let workload = Workload::serial(&spec.name, module, spec.tolerance)
            .map_err(|e| format!("workload preparation failed: {e}"))?;
        // Eval jobs run the campaign against the stored protected
        // variant, keeping the reference verifier.
        let workload = if spec.kind == JobKind::Eval {
            // Checkpoints are decoded without re-validation, so a
            // hand-edited `.job` file can reach this point without a
            // module key; fail the job instead of killing the worker.
            let key_text = spec
                .module_key
                .as_deref()
                .ok_or_else(|| "eval job is missing its module key".to_string())?;
            let key = Key::parse(key_text).map_err(|e| format!("bad module key: {e}"))?;
            let artifact = self
                .store
                .get::<ProtectedModule>(&key)
                .map_err(|e| format!("cannot load module {key}: {e}"))?
                .ok_or_else(|| format!("no protected module under key {key}"))?;
            let variant = artifact
                .module()
                .map_err(|e| format!("stored module {key} no longer parses: {e}"))?;
            workload
                .with_module(&format!("{}-eval", spec.name), variant)
                .map_err(|e| format!("protected module clean run failed: {e}"))?
        } else {
            workload
        };
        let config = spec.campaign_config();
        let mut options = spec.campaign_options();
        let journal_path = self.journal_path(&job.id);
        options.journal = Some(journal_path.clone());
        // Adaptive jobs draw nothing up front: the driver draws round
        // by round as labels accumulate (see `advance_round`).
        let adaptive = if spec.adaptive {
            let params = AdaptiveParams::for_budget(config.runs);
            Some(
                AdaptiveDriver::new(&workload, &config, params)
                    .map_err(|e| format!("adaptive setup failed: {e}"))?,
            )
        } else {
            None
        };
        let round_runs = adaptive.as_ref().map(|d| d.params().round_runs);
        let plans = if spec.adaptive {
            Vec::new()
        } else {
            draw_plans(&workload, &config, options.sampling)
                .map_err(|e| format!("plan drawing failed: {e}"))?
        };
        let assignment = if spec.sections {
            let partition = SectionPartition::compute(&workload.module);
            Some(
                assign_sections(&workload, &partition, &plans)
                    .map_err(|e| format!("section assignment failed: {e}"))?,
            )
        } else {
            None
        };
        let header = JournalHeader {
            workload: workload.name.clone(),
            entry: workload.entry.clone(),
            seed: config.seed,
            runs: config.runs,
            sampling: options.sampling,
            fault_model: config.fault_model,
            eligible_results: workload.eligible_results,
            nominal_insts: workload.nominal_insts,
            round_runs,
        };
        let (journal, resume) = CampaignJournal::open(&journal_path, &header)
            .map_err(|e| format!("journal failed: {e}"))?;
        // Adaptive slots cover the whole budget; rounds fill a prefix.
        let slot_count = if spec.adaptive {
            config.runs
        } else {
            plans.len()
        };
        let slots: Vec<Mutex<Option<PlanOutcome>>> =
            (0..slot_count).map(|_| Mutex::new(None)).collect();
        let ResumeState {
            records,
            failures,
            sections: _,
        } = resume;
        let resumed = records.len() + failures.len();
        for (i, record) in records {
            *lock(&slots[i]) = Some(PlanOutcome::Record(record));
        }
        for (i, failure) in failures {
            *lock(&slots[i]) = Some(PlanOutcome::Failure(failure));
        }
        let compiled = match config.engine {
            Engine::Compiled => Some(CompiledProgram::compile(&workload.module)),
            Engine::Reference => None,
        };
        job.update(|p| {
            p.state = JobState::Running;
            p.total = plans.len();
            p.resumed = resumed;
        });
        job.events
            .push(proto::progress_event(0, plans.len(), resumed));
        Ok(Arc::new(RunCtx {
            job: Arc::clone(job),
            workload,
            compiled,
            plans: Mutex::new(plans),
            assignment,
            adaptive: adaptive.map(Mutex::new),
            round_runs,
            slots,
            journal,
            remaining_chunks: AtomicUsize::new(0),
            config,
            options,
        }))
    }

    /// Adaptive task: retrains on every label collected so far, draws
    /// the next margin-weighted round, and dispatches its chunks — or
    /// hands off to finalize when the driver stops (entropy stability
    /// or budget). Fully journal-resumed rounds are replayed inline
    /// without touching the scheduler.
    fn advance_round(self: Arc<Daemon>, ctx: Arc<RunCtx>) {
        let Some(driver) = &ctx.adaptive else {
            let daemon = Arc::clone(&self);
            self.scheduler.submit(move || daemon.finalize(ctx));
            return;
        };
        loop {
            if ctx.job.canceled() {
                let daemon = Arc::clone(&self);
                self.scheduler.submit(move || daemon.finalize(ctx));
                return;
            }
            let base = lock(&ctx.plans).len();
            let labeled: Vec<(usize, InjectionRecord)> = (0..base)
                .filter_map(|i| match *lock(&ctx.slots[i]) {
                    Some(PlanOutcome::Record(record)) => Some((i, record)),
                    _ => None,
                })
                .collect();
            let next = lock(driver).next_round(&labeled);
            let Some((_round, _sampling, round_plans)) = next else {
                let daemon = Arc::clone(&self);
                self.scheduler.submit(move || daemon.finalize(ctx));
                return;
            };
            let drawn = base + round_plans.len();
            lock(&ctx.plans).extend(round_plans);
            ctx.job.update(|p| p.total = drawn);
            let pending: Vec<usize> = (base..drawn)
                .filter(|i| lock(&ctx.slots[*i]).is_none())
                .collect();
            if pending.is_empty() {
                // The whole round was resumed from the journal; replay
                // the next draw against the now-complete labels.
                continue;
            }
            // Chunks stay inside the round, so every journal write of a
            // chunk shares one round tag.
            let chunk_size = self.config.chunk.max(1);
            let chunks: Vec<Vec<usize>> = pending.chunks(chunk_size).map(|c| c.to_vec()).collect();
            ctx.remaining_chunks.store(chunks.len(), Ordering::SeqCst);
            for (i, chunk) in chunks.into_iter().enumerate() {
                let daemon = Arc::clone(&self);
                let ctx = Arc::clone(&ctx);
                self.scheduler
                    .submit_to(i, move || daemon.run_chunk(ctx, chunk));
            }
            return;
        }
    }

    fn dispatch_chunks(self: Arc<Daemon>, ctx: Arc<RunCtx>) {
        let drawn = lock(&ctx.plans).len();
        let pending: Vec<usize> = (0..drawn)
            .filter(|i| lock(&ctx.slots[*i]).is_none())
            .collect();
        if pending.is_empty() {
            let daemon = Arc::clone(&self);
            self.scheduler.submit(move || daemon.finalize(ctx));
            return;
        }
        let chunk_size = self.config.chunk.max(1);
        let chunks: Vec<Vec<usize>> = match &ctx.assignment {
            // Sectional jobs: a stealable chunk never crosses a section
            // boundary, so every journal write of a chunk shares one
            // section tag and per-section progress is a chunk count.
            // Oversized sections still split at the configured size.
            Some(assignment) => {
                let sections = assignment
                    .iter()
                    .map(|&s| s as usize + 1)
                    .max()
                    .unwrap_or(0);
                let mut by_section: Vec<Vec<usize>> = vec![Vec::new(); sections];
                for &i in &pending {
                    by_section[assignment[i] as usize].push(i);
                }
                by_section
                    .iter()
                    .flat_map(|sec| sec.chunks(chunk_size))
                    .map(|c| c.to_vec())
                    .collect()
            }
            None => pending.chunks(chunk_size).map(|c| c.to_vec()).collect(),
        };
        ctx.remaining_chunks.store(chunks.len(), Ordering::SeqCst);
        // Block-distribute across shards so every worker has stealable
        // pieces of this job from the start.
        for (i, chunk) in chunks.into_iter().enumerate() {
            let daemon = Arc::clone(&self);
            let ctx = Arc::clone(&ctx);
            self.scheduler
                .submit_to(i, move || daemon.run_chunk(ctx, chunk));
        }
    }

    /// Task 2: execute one stealable chunk of plan indices.
    fn run_chunk(self: Arc<Daemon>, ctx: Arc<RunCtx>, chunk: Vec<usize>) {
        if !ctx.job.canceled() {
            let mut executor = PlanExecutor::new(
                &ctx.workload,
                ctx.config.seed,
                &ctx.options,
                ctx.compiled.as_ref(),
            );
            let chunk_plans: Vec<Injection> = {
                let plans = lock(&ctx.plans);
                chunk.iter().map(|&i| plans[i]).collect()
            };
            let outcomes: Vec<(usize, PlanOutcome)> = chunk
                .iter()
                .zip(&chunk_plans)
                .map(|(&i, &plan)| (i, executor.execute(i, plan)))
                .collect();
            // Chunks of sectional jobs are section-aligned and chunks
            // of adaptive jobs round-aligned, so one tag covers the
            // whole write.
            let section = match (&ctx.assignment, ctx.round_runs) {
                (Some(assignment), _) => Some(assignment[chunk[0]]),
                (None, Some(round_runs)) => Some((chunk[0] / round_runs) as u32),
                (None, None) => None,
            };
            // One write per chunk: a torn write can only tear the final
            // line, which journal resume tolerates.
            if let Err(e) = ctx.journal.append_outcomes_in_section(&outcomes, section) {
                ctx.job.update(|p| {
                    p.error
                        .get_or_insert_with(|| format!("journal write failed: {e}"));
                });
                ctx.job.request_cancel();
            } else {
                for (i, outcome) in outcomes {
                    ctx.job
                        .events
                        .push(outcome_line_in_section(i, &outcome, section));
                    *lock(&ctx.slots[i]) = Some(outcome);
                }
                self.executed_runs
                    .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                let progress = ctx.job.update(|p| {
                    p.executed += chunk.len();
                    (p.executed, p.total, p.resumed)
                });
                ctx.job
                    .events
                    .push(proto::progress_event(progress.0, progress.1, progress.2));
            }
        }
        if ctx.remaining_chunks.fetch_sub(1, Ordering::AcqRel) == 1 {
            let daemon = Arc::clone(&self);
            if ctx.adaptive.is_some() {
                self.scheduler.submit(move || daemon.advance_round(ctx));
            } else {
                self.scheduler.submit(move || daemon.finalize(ctx));
            }
        }
    }

    /// Task 3: assemble the campaign result and build the artifact.
    fn finalize(self: Arc<Daemon>, ctx: Arc<RunCtx>) {
        let job = Arc::clone(&ctx.job);
        if job.canceled() {
            // A journal failure cancels too; report it over a plain
            // client cancel when present.
            match job.progress().error {
                Some(e) => self.fail(&job, e),
                None => self.finish_canceled(&job),
            }
            return;
        }
        // Adaptive jobs that stop early drew fewer plans than the
        // budget-sized slot vector; only drawn plans count.
        let drawn = lock(&ctx.plans).len();
        let mut records = Vec::with_capacity(drawn);
        let mut harness_failures = Vec::new();
        let mut missing = 0usize;
        for slot in &ctx.slots[..drawn] {
            match lock(slot).clone() {
                Some(PlanOutcome::Record(record)) => records.push(record),
                Some(PlanOutcome::Failure(failure)) => harness_failures.push(failure),
                None => missing += 1,
            }
        }
        if missing > 0 {
            self.fail(&job, format!("{missing} plans left unexecuted"));
            return;
        }
        harness_failures.sort_by_key(|f| f.plan_index);
        let resumed = job.progress().resumed;
        let result = CampaignResult {
            records,
            harness_failures,
            resumed,
            nominal_insts: ctx.workload.nominal_insts,
        };
        match self.build_artifact(&ctx, &result) {
            Ok(payload) => {
                job.update(|p| p.state = JobState::Done);
                job.events.push(proto::result_event(&job.id, &payload));
                job.events.close();
                self.remove_checkpoint(&job.id);
            }
            Err(reason) => self.fail(&job, reason),
        }
    }

    /// Builds and stores the job-kind-specific artifact; the returned
    /// payload is what every subscriber receives byte-identically.
    fn build_artifact(&self, ctx: &RunCtx, result: &CampaignResult) -> Result<String, String> {
        let spec = &ctx.job.spec;
        let store = self
            .store
            .for_tenant(&spec.tenant)
            .map_err(|e| format!("tenant store failed: {e}"))?;
        let store_err = |e: ipas_store::MemoError<String>| match e {
            ipas_store::MemoError::Store(e) => format!("artifact store failed: {e}"),
            ipas_store::MemoError::Compute(e) => e,
        };
        match spec.kind {
            JobKind::Campaign | JobKind::Eval => {
                let summary = summarize(&ctx.workload.name, &ctx.config, result);
                let fp = summary_fingerprint(&ctx.workload.module, &ctx.workload.name, &ctx.config);
                let key = Key::of(&fp);
                let (summary, _) = store
                    .memoize_shared(&self.flight, &key, || Ok::<_, String>(summary))
                    .map_err(store_err)?;
                Ok(render_summary(&summary))
            }
            JobKind::Protect | JobKind::Train => {
                let campaign_fp = campaign_fingerprint(&ctx.workload.module, &ctx.config);
                let set_key = Key::of(&campaign_fp);
                let (set, _) = store
                    .memoize_shared(&self.flight, &set_key, || {
                        Ok::<_, String>(training_set_artifact(&ctx.workload, result))
                    })
                    .map_err(store_err)?;
                if spec.kind == JobKind::Train {
                    let grid = GridOptions::quick();
                    let (models, fp) = train_models(
                        &store,
                        &set,
                        &campaign_fp,
                        LabelKind::SocGenerating,
                        &grid,
                        spec.top.max(1),
                    )?;
                    let mut payload = String::new();
                    for (rank, model) in models.iter().enumerate() {
                        let name = format!("{}-r{rank}", spec.name);
                        let key = Key::ranked(&fp, rank);
                        store
                            .registry()
                            .register(
                                &name,
                                ArtifactKind::TrainedModel,
                                &key,
                                &format!("trained by serve job {}", ctx.job.id),
                            )
                            .map_err(|e| format!("registry failed: {e}"))?;
                        payload.push_str(&format!(
                            "model {name} f1 {:.4} key {key}\n",
                            model.score().f_score
                        ));
                    }
                    Ok(payload)
                } else {
                    let (policy, model_key) =
                        self.resolve_policy(&store, spec, &set, &campaign_fp)?;
                    let (module, stats, _) = memoized_protect(
                        Some(&store),
                        &ctx.workload.module,
                        &policy,
                        model_key.as_ref(),
                    )
                    .map_err(|e| format!("protection failed: {e}"))?;
                    Ok(format!(
                        "policy {} considered {} duplicated {} checks {}\n{}",
                        policy.label(),
                        stats.considered,
                        stats.duplicated,
                        stats.checks,
                        module.to_text()
                    ))
                }
            }
        }
    }

    /// Builds the protection policy a protect job asked for, training a
    /// classifier when the policy needs one.
    fn resolve_policy(
        &self,
        store: &Store,
        spec: &JobSpec,
        set: &ipas_store::TrainingSet,
        campaign_fp: &ipas_store::Fingerprint,
    ) -> Result<(ProtectionPolicy, Option<Key>), String> {
        let label = match spec.policy.as_str() {
            "unprotected" => return Ok((ProtectionPolicy::Unprotected, None)),
            "full" => return Ok((ProtectionPolicy::FullDuplication, None)),
            "ipas" => LabelKind::SocGenerating,
            "baseline" => LabelKind::SymptomGenerating,
            other => return Err(format!("unknown policy {other:?}")),
        };
        let grid = GridOptions::quick();
        let (mut models, fp) = train_models(store, set, campaign_fp, label, &grid, 1)?;
        let model = models.pop().ok_or("grid search produced no models")?;
        let policy = match label {
            LabelKind::SocGenerating => ProtectionPolicy::Ipas(model),
            LabelKind::SymptomGenerating => ProtectionPolicy::Baseline(model),
        };
        Ok((policy, Some(Key::ranked(&fp, 0))))
    }

    fn close_all_events(&self) {
        for job in lock(&self.jobs).values() {
            job.events.close();
        }
    }

    /// Handles one client connection (one request per connection).
    fn handle(self: Arc<Daemon>, stream: UnixStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        let mut line = String::new();
        if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
            return;
        }
        let reply = |writer: &mut UnixStream, text: &str| {
            let _ = writer.write_all(text.as_bytes());
            let _ = writer.flush();
        };
        match proto::parse_request(line.trim_end()) {
            Err(reason) => reply(&mut writer, &proto::error_line(&reason)),
            Ok(Request::Submit { spec, watch }) => match self.admit(spec, true) {
                Err(reason) => reply(&mut writer, &proto::error_line(&reason)),
                Ok((job, coalesced)) => {
                    reply(
                        &mut writer,
                        &proto::accepted_line(&job.id, job.progress().state.label(), coalesced),
                    );
                    if watch {
                        stream_events(&job, &mut writer);
                    }
                }
            },
            Ok(Request::Status(id)) => match lock(&self.jobs).get(&id).cloned() {
                Some(job) => reply(&mut writer, &proto::status_line(&id, &job.progress())),
                None => reply(
                    &mut writer,
                    &proto::error_line(&format!("unknown job {id}")),
                ),
            },
            Ok(Request::Watch(id)) => match lock(&self.jobs).get(&id).cloned() {
                Some(job) => stream_events(&job, &mut writer),
                None => reply(
                    &mut writer,
                    &proto::error_line(&format!("unknown job {id}")),
                ),
            },
            Ok(Request::Cancel(id)) => match lock(&self.jobs).get(&id).cloned() {
                Some(job) => {
                    job.request_cancel();
                    // A still-queued job never reaches a worker task
                    // that would observe the flag; settle it here.
                    if job.progress().state == JobState::Queued {
                        self.finish_canceled(&job);
                    }
                    reply(&mut writer, &proto::status_line(&id, &job.progress()));
                }
                None => reply(
                    &mut writer,
                    &proto::error_line(&format!("unknown job {id}")),
                ),
            },
            Ok(Request::Stats) => {
                let line = proto::stats_line(
                    self.accepted.load(Ordering::Relaxed),
                    self.executed_runs.load(Ordering::Relaxed),
                    self.scheduler.queued() as u64,
                );
                reply(&mut writer, &line);
            }
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                reply(
                    &mut writer,
                    &proto::stats_line(
                        self.accepted.load(Ordering::Relaxed),
                        self.executed_runs.load(Ordering::Relaxed),
                        self.scheduler.queued() as u64,
                    ),
                );
            }
        }
    }
}

/// Streams a job's event log to a client until the log closes; a write
/// failure (client hung up) ends the stream early.
fn stream_events(job: &Job, writer: &mut UnixStream) {
    let mut cursor = 0;
    while let Some(event) = job.events.next(cursor) {
        cursor += 1;
        if writer.write_all(event.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Builds the outcome summary of a finished campaign.
fn summarize(name: &str, config: &CampaignConfig, r: &CampaignResult) -> CampaignSummary {
    CampaignSummary {
        workload: name.to_string(),
        runs: config.runs as u64,
        seed: config.seed,
        nominal_insts: r.nominal_insts,
        counts: Outcome::ALL.map(|o| r.count(o) as u64),
        harness_failures: r.harness_failures.len() as u64,
    }
}

/// Deterministic human-readable rendering of a campaign summary — the
/// byte-identical payload campaign/eval subscribers receive.
fn render_summary(s: &CampaignSummary) -> String {
    let mut out = format!(
        "workload {} runs {} seed {} nominal_insts {}\n",
        s.workload, s.runs, s.seed, s.nominal_insts
    );
    for (i, label) in ["symptom", "detected", "masked", "soc"].iter().enumerate() {
        out.push_str(&format!(
            "{label} {} ({:.2}%)\n",
            s.counts[i],
            s.fraction(i) * 100.0
        ));
    }
    out.push_str(&format!("harness_failures {}\n", s.harness_failures));
    out
}

/// Trains (or loads, memoized through the store) the top-`top` models
/// for `label` from a stored training set.
fn train_models(
    store: &Store,
    set: &TrainingSet,
    campaign_fp: &Fingerprint,
    label: LabelKind,
    grid: &GridOptions,
    top: usize,
) -> Result<(Vec<TrainedClassifier>, Fingerprint), String> {
    let data = dataset_from_artifact(set, label);
    if data.num_positive() == 0 || data.num_positive() == data.len() {
        return Err("degenerate training labels; raise runs".to_string());
    }
    let fp = training_fingerprint(campaign_fp, label, grid, top);
    let (models, _) = memoized_models(Some(store), &fp, top, || {
        train_top_configs(&data, grid, top)
    })
    .map_err(|e| format!("artifact store failed: {e}"))?;
    Ok((models, fp))
}

/// Runs the daemon until a shutdown request or signal, then drains.
///
/// # Errors
///
/// [`ServeError`] when the state directory or socket cannot be set up;
/// job-level failures are reported to clients, not here.
pub fn run_daemon(config: DaemonConfig) -> Result<DaemonReport, ServeError> {
    let daemon = Daemon::new(config)?;
    SIGNALED.store(false, Ordering::SeqCst);
    install_signal_handlers();
    daemon.restore_checkpoints()?;
    let socket = daemon.config.socket.clone();
    // A stale socket file from a crashed daemon would fail the bind.
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket).map_err(|e| ServeError::io(socket.clone(), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::io(socket.clone(), e))?;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !daemon.shutdown.load(Ordering::SeqCst) && !SIGNALED.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(&daemon);
                connections.push(std::thread::spawn(move || daemon.handle(stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = std::fs::remove_file(&socket);
                return Err(ServeError::io(socket, e));
            }
        }
        connections.retain(|h| !h.is_finished());
    }
    // Graceful drain: in-flight chunks finish and checkpoint their
    // outcomes; queued tasks are recovered from `.job` files next run.
    let abandoned_tasks = daemon.scheduler.drain();
    daemon.close_all_events();
    for handle in connections {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&socket);
    Ok(DaemonReport {
        jobs: daemon.accepted.load(Ordering::Relaxed),
        executed_runs: daemon.executed_runs.load(Ordering::Relaxed),
        abandoned_tasks,
    })
}

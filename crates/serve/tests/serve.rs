//! End-to-end daemon tests over a real Unix socket: request
//! coalescing with byte-identical responses, graceful shutdown with
//! journal-backed restart-resume, and tenant quotas.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ipas_core::jobspec::{JobKind, JobSpec};
use ipas_serve::{run_daemon, Client, DaemonConfig, ServeError};
use ipas_store::Fields;

const SOURCE: &str = "fn main() -> int { let s: int = 0;
    for (let i: int = 0; i < 300; i = i + 1) { s = s + i * i; }
    output_i(s); return 0; }";

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ipas-serve-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &Path, threads: usize, chunk: usize) -> DaemonConfig {
    DaemonConfig {
        socket: dir.join("serve.sock"),
        state_dir: dir.join("state"),
        threads,
        shards: threads,
        chunk,
        quota_runs: 0,
    }
}

/// Starts the daemon in a thread and waits for the socket to accept.
fn start_daemon(
    config: DaemonConfig,
) -> (std::thread::JoinHandle<ipas_serve::DaemonReport>, Client) {
    let socket = config.socket.clone();
    let handle = std::thread::spawn(move || run_daemon(config).expect("daemon runs"));
    let client = Client::new(&socket);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if socket.exists() && client.stats().is_ok() {
            return (handle, client);
        }
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn field(line: &str, key: &str) -> u64 {
    Fields::parse(line.trim_end())
        .and_then(|f| f.num(key))
        .unwrap_or_else(|| panic!("no field {key:?} in {line:?}"))
}

#[test]
fn concurrent_identical_submissions_run_one_campaign_byte_identically() {
    let dir = test_dir("coalesce");
    let (daemon, client) = start_daemon(config(&dir, 2, 8));

    let mut spec = JobSpec::new(JobKind::Protect, "acme", "sumsq", SOURCE);
    spec.policy = "full".to_string();
    spec.runs = 64;
    spec.seed = 3;

    let results: Vec<(Vec<u8>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let client = client.clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut log = Vec::new();
                    let outcome = client
                        .submit(&spec, true, &mut out, &mut log)
                        .expect("submission succeeds");
                    assert_eq!(outcome.id, spec.job_id());
                    (out, outcome.coalesced)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let leaders = results.iter().filter(|(_, coalesced)| !coalesced).count();
    assert_eq!(leaders, 1, "exactly one submission created the job");
    let payload = &results[0].0;
    assert!(!payload.is_empty());
    let text = String::from_utf8_lossy(payload);
    assert!(text.contains("policy full"), "payload: {text}");
    assert!(
        text.contains("fn @main"),
        "payload carries the protected IR"
    );
    for (other, _) in &results[1..] {
        assert_eq!(other, payload, "all subscribers get identical bytes");
    }

    // The dedup invariant: four submissions, one campaign's worth of
    // injections executed.
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "executed_runs"), 64);
    assert_eq!(field(&stats, "jobs"), 1);

    client.shutdown().unwrap();
    let report = daemon.join().unwrap();
    assert_eq!(report.executed_runs, 64);
    assert_eq!(report.jobs, 1);
}

#[test]
fn graceful_shutdown_drains_and_restart_resumes_from_journal() {
    let dir = test_dir("resume");
    let cfg = config(&dir, 1, 4);

    // Phase 1: submit a large campaign and shut down immediately — the
    // single worker can only finish its in-flight chunk.
    let (daemon, client) = start_daemon(cfg.clone());
    let mut spec = JobSpec::new(JobKind::Campaign, "acme", "sumsq", SOURCE);
    spec.runs = 4000;
    spec.seed = 9;
    let outcome = client
        .submit(&spec, false, &mut Vec::new(), &mut Vec::new())
        .unwrap();
    assert!(!outcome.coalesced);
    client.shutdown().unwrap();
    let report_a = daemon.join().unwrap();
    assert!(
        (report_a.executed_runs as usize) < spec.runs,
        "daemon A must stop mid-job for this test to exercise resume \
         (executed {})",
        report_a.executed_runs
    );
    let checkpoint = cfg
        .state_dir
        .join("jobs")
        .join(format!("{}.job", spec.job_id()));
    assert!(checkpoint.exists(), "unfinished job keeps its checkpoint");

    // Phase 2: a fresh daemon on the same state restores the job and
    // finishes exactly the remaining plans.
    let (daemon, client) = start_daemon(cfg.clone());
    let mut out = Vec::new();
    client
        .watch(&spec.job_id(), &mut out, &mut Vec::new())
        .expect("restored job completes");
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("runs 4000"), "payload: {text}");
    let status = client.status(&spec.job_id()).unwrap();
    assert_eq!(
        field(&status, "resumed"),
        report_a.executed_runs,
        "every journaled plan was recovered, none re-executed"
    );
    client.shutdown().unwrap();
    let report_b = daemon.join().unwrap();
    assert_eq!(
        report_a.executed_runs + report_b.executed_runs,
        spec.runs as u64,
        "the two processes together execute each plan exactly once"
    );
    assert!(!checkpoint.exists(), "finished job clears its checkpoint");

    // Phase 3: resubmitting the finished spec performs zero new
    // injections — the journal is the campaign cache across restarts.
    let (daemon, client) = start_daemon(cfg);
    let mut again = Vec::new();
    client
        .submit(&spec, true, &mut again, &mut Vec::new())
        .unwrap();
    assert_eq!(again, out, "replayed artifact is byte-identical");
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "executed_runs"), 0);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

const TWO_FN_SOURCE: &str = "fn sq(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + i * i; }
    return s;
}
fn main() -> int {
    output_i(sq(40));
    let b: int = 0;
    for (let j: int = 0; j < 25; j = j + 1) { b = b + j * 3; }
    output_i(b);
    return 0;
}";

#[test]
fn sectional_jobs_tag_the_journal_and_keep_the_summary_identical() {
    let dir = test_dir("sections");
    let cfg = config(&dir, 2, 8);
    let (daemon, client) = start_daemon(cfg.clone());

    let mut plain = JobSpec::new(JobKind::Campaign, "acme", "twofn", TWO_FN_SOURCE);
    plain.runs = 48;
    plain.seed = 7;
    let mut sectional = plain.clone();
    sectional.sections = true;
    assert_ne!(
        plain.job_id(),
        sectional.job_id(),
        "sectional work has its own job id"
    );

    let mut out_plain = Vec::new();
    client
        .submit(&plain, true, &mut out_plain, &mut Vec::new())
        .unwrap();
    let mut out_sectional = Vec::new();
    client
        .submit(&sectional, true, &mut out_sectional, &mut Vec::new())
        .unwrap();
    assert_eq!(
        out_sectional, out_plain,
        "section-aligned chunking is invisible in the summary"
    );

    let journal = |id: &str| {
        std::fs::read_to_string(cfg.state_dir.join("journals").join(format!("{id}.jsonl")))
            .expect("journal written")
    };
    assert!(
        journal(&sectional.job_id()).contains("\"sec\":"),
        "sectional records carry section tags"
    );
    assert!(
        !journal(&plain.job_id()).contains("\"sec\":"),
        "plain records stay untagged"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn adaptive_jobs_round_tag_the_journal_and_resume_across_restarts() {
    let dir = test_dir("adaptive");
    let cfg = config(&dir, 2, 8);
    let (daemon, client) = start_daemon(cfg.clone());

    let mut spec = JobSpec::new(JobKind::Campaign, "acme", "sumsq", SOURCE);
    spec.runs = 64;
    spec.seed = 5;
    spec.adaptive = true;

    let mut out = Vec::new();
    client
        .submit(&spec, true, &mut out, &mut Vec::new())
        .expect("adaptive campaign completes");
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("workload sumsq"), "payload: {text}");

    let journal_path = cfg
        .state_dir
        .join("journals")
        .join(format!("{}.jsonl", spec.job_id()));
    let journal = std::fs::read_to_string(&journal_path).expect("journal written");
    assert!(
        journal.lines().next().unwrap().contains("\"rounds\":"),
        "adaptive header pins the round size"
    );
    assert!(
        journal.contains("\"sec\":"),
        "adaptive records carry round tags"
    );
    client.shutdown().unwrap();
    let report_a = daemon.join().unwrap();

    // A fresh daemon replaying the same spec resumes every plan from
    // the journal and re-executes nothing.
    let (daemon, client) = start_daemon(cfg);
    let mut again = Vec::new();
    client
        .submit(&spec, true, &mut again, &mut Vec::new())
        .expect("resumed adaptive campaign completes");
    assert_eq!(again, out, "resumed artifact is byte-identical");
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "executed_runs"), 0, "all plans resumed");
    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(report_a.executed_runs > 0);
}

#[test]
fn bad_eval_specs_fail_the_job_instead_of_killing_the_worker() {
    let dir = test_dir("badeval");
    let cfg = config(&dir, 2, 8);

    // A crafted checkpoint: an eval spec whose module key was stripped
    // by hand. Decode-time validation rejects it, so a restarting
    // daemon must drop it instead of wedging (and even if one slipped
    // through, prepare now fails the job rather than panicking).
    let mut crafted = JobSpec::new(JobKind::Eval, "acme", "sumsq", SOURCE);
    crafted.module_key = Some("deadbeefdeadbeef".to_string());
    let line = crafted.encode("jobspec");
    let stripped = {
        let start = line.find(",\"module_key\"").expect("field present");
        // The key is the last field, so cut up to the closing brace.
        let end = line[start + 1..]
            .find(",\"")
            .map(|o| o + start + 1)
            .unwrap_or_else(|| line.rfind('}').unwrap());
        format!("{}{}", &line[..start], &line[end..])
    };
    assert!(!stripped.contains("module_key"));
    let jobs_dir = cfg.state_dir.join("jobs");
    std::fs::create_dir_all(&jobs_dir).unwrap();
    let checkpoint = jobs_dir.join(format!("{}.job", crafted.job_id()));
    std::fs::write(&checkpoint, &stripped).unwrap();

    let (daemon, client) = start_daemon(cfg);
    assert!(
        !checkpoint.exists(),
        "invalid checkpoint dropped at restore"
    );
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "jobs"), 0, "crafted job never admitted");

    // An eval spec that validates but references a module the store has
    // never seen reaches prepare; the job must fail with a clear event,
    // not kill the worker (which would hang this watch forever).
    match client.submit(&crafted, true, &mut Vec::new(), &mut Vec::new()) {
        Err(ServeError::JobFailed(reason)) => {
            assert!(reason.contains("module"), "unhelpful reason: {reason}")
        }
        other => panic!("expected a failed event, got {other:?}"),
    }
    // The daemon is still healthy after the failed job.
    client.stats().expect("daemon still serving");
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn tenant_quotas_refuse_over_budget_submissions() {
    let dir = test_dir("quota");
    let mut cfg = config(&dir, 2, 8);
    cfg.quota_runs = 100;
    let (daemon, client) = start_daemon(cfg);

    let mut spec = JobSpec::new(JobKind::Campaign, "smalltenant", "sumsq", SOURCE);
    spec.runs = 80;
    client
        .submit(&spec, true, &mut Vec::new(), &mut Vec::new())
        .unwrap();

    // A different job for the same tenant blows the 100-run budget...
    let mut over = spec.clone();
    over.seed = 1;
    let refused = over.clone();
    match client.submit(&refused, false, &mut Vec::new(), &mut Vec::new()) {
        Err(ServeError::Refused(reason)) => assert!(reason.contains("quota"), "{reason}"),
        other => panic!("expected quota refusal, got {other:?}"),
    }

    // ...but another tenant has its own ledger, and resubmitting the
    // *identical* first job coalesces without a fresh charge.
    over.tenant = "bigtenant".to_string();
    client
        .submit(&over, true, &mut Vec::new(), &mut Vec::new())
        .unwrap();
    let outcome = client
        .submit(&spec, false, &mut Vec::new(), &mut Vec::new())
        .unwrap();
    assert!(outcome.coalesced);

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

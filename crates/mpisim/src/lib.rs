//! A simulated MPI runtime for multi-rank interpretation.
//!
//! Each rank runs the same module on its own OS thread with a private
//! [`ipas_interp::Machine`]; collectives rendezvous through a shared
//! [`Communicator`] (a generation-counted reusable barrier that also
//! reduces/gathers contributions). The runtime reproduces the paper's
//! §4.4.1 failure semantics: when one rank traps, hangs, or detects a
//! fault, the job is *poisoned* and every other rank aborts with
//! [`ipas_interp::Trap::MpiAbort`] — the "if a process fails, the rest
//! of the processes abort" behaviour IPAS relies on to turn local
//! detections into job-level symptoms.
//!
//! Desynchronized collectives (e.g. a corrupted loop bound making one
//! rank skip an allreduce) are detected: a rank finishing while others
//! wait poisons the job rather than deadlocking.
//!
//! # Example
//!
//! ```
//! use ipas_mpisim::run_mpi_job;
//! use ipas_interp::{RunConfig, RtVal};
//!
//! let module = ipas_lang::compile(r#"
//! fn main() -> int {
//!     let mine: float = itof(mpi_rank() + 1);
//!     let total: float = allreduce_sum_f(mine);
//!     if (mpi_rank() == 0) { output_f(total); }
//!     return 0;
//! }
//! "#).unwrap();
//! let job = run_mpi_job(&module, 4, &RunConfig::default(), None).unwrap();
//! assert_eq!(job.rank_outputs[0].outputs.as_floats(), vec![10.0]);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use ipas_interp::{Env, Injection, Machine, RunConfig, RunError, RunOutput, RunStatus, Trap};
use ipas_ir::Module;

/// Aggregate result of one multi-rank job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Per-rank run outputs, indexed by rank.
    pub rank_outputs: Vec<RunOutput>,
    /// The job-level status: `Completed` only when every rank completed;
    /// otherwise the first failing rank's status (detection and symptoms
    /// propagate job-wide, per the paper's abort semantics).
    pub status: RunStatus,
    /// Maximum per-rank dynamic instruction count — the SPMD proxy for
    /// job execution time used by the scalability experiment.
    pub max_rank_insts: u64,
    /// Total dynamic instructions across ranks.
    pub total_insts: u64,
}

/// Internal state of one in-flight collective operation.
#[derive(Default)]
struct CollectiveState {
    generation: u64,
    arrived: usize,
    // Accumulators for the in-flight operation.
    acc_f: f64,
    acc_i: i64,
    acc_max: f64,
    acc_vec_f: Vec<f64>,
    acc_vec_i: Vec<i64>,
    gather: Vec<f64>,
    // Results of the completed generation (read by late wakers).
    res_f: f64,
    res_i: i64,
    res_max: f64,
    res_vec_f: Vec<f64>,
    res_vec_i: Vec<i64>,
    res_gather: Vec<f64>,
}

/// The shared rendezvous object of a job.
pub struct Communicator {
    size: usize,
    state: Mutex<CollectiveState>,
    cv: Condvar,
    poison: AtomicBool,
    finished_ranks: AtomicUsize,
}

impl Communicator {
    /// Creates a communicator for `size` ranks.
    pub fn new(size: usize) -> Self {
        Communicator {
            size,
            state: Mutex::new(CollectiveState {
                acc_max: f64::NEG_INFINITY,
                ..CollectiveState::default()
            }),
            cv: Condvar::new(),
            poison: AtomicBool::new(false),
            finished_ranks: AtomicUsize::new(0),
        }
    }

    /// Marks the job failed; wakes all waiters.
    pub fn poison(&self) {
        self.poison.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Returns `true` once the job is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::SeqCst)
    }

    /// Called when a rank's interpretation ends (any status). If other
    /// ranks are blocked in a collective that can now never complete,
    /// the job is poisoned.
    fn rank_finished(&self) {
        self.finished_ranks.fetch_add(1, Ordering::SeqCst);
        let st = self.state.lock().expect("communicator lock");
        if st.arrived > 0 {
            // Someone is waiting on a collective this rank will never
            // join: certain deadlock.
            drop(st);
            self.poison();
        }
    }

    /// Generic collective: `contribute` folds this rank's value into the
    /// accumulators; `extract` reads the completed result.
    fn collective<T>(
        &self,
        contribute: impl FnOnce(&mut CollectiveState),
        extract: impl Fn(&CollectiveState) -> T,
    ) -> Result<T, Trap> {
        if self.is_poisoned() {
            return Err(Trap::MpiAbort);
        }
        let mut st = self.state.lock().expect("communicator lock");
        let my_gen = st.generation;
        contribute(&mut st);
        st.arrived += 1;
        let alive = self.size - self.finished_ranks.load(Ordering::SeqCst);
        if st.arrived >= alive {
            if st.arrived < self.size {
                // Some ranks finished without this collective: the SPMD
                // program desynchronized — abort the job.
                st.arrived = 0;
                drop(st);
                self.poison();
                return Err(Trap::MpiAbort);
            }
            // Last rank in: publish results, advance the generation.
            st.res_f = st.acc_f;
            st.res_i = st.acc_i;
            st.res_max = st.acc_max;
            st.res_vec_f = std::mem::take(&mut st.acc_vec_f);
            st.res_vec_i = std::mem::take(&mut st.acc_vec_i);
            st.res_gather = std::mem::take(&mut st.gather);
            st.acc_f = 0.0;
            st.acc_i = 0;
            st.acc_max = f64::NEG_INFINITY;
            st.arrived = 0;
            st.generation += 1;
            let out = extract(&st);
            drop(st);
            self.cv.notify_all();
            return Ok(out);
        }
        // Wait for the generation to advance (or the job to die).
        loop {
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("communicator lock");
            st = guard;
            if st.generation != my_gen {
                return Ok(extract(&st));
            }
            if self.is_poisoned() {
                return Err(Trap::MpiAbort);
            }
            let _ = timeout;
        }
    }
}

/// The per-rank [`Env`] implementation.
pub struct RankEnv<'c> {
    rank: i64,
    comm: &'c Communicator,
}

impl<'c> RankEnv<'c> {
    /// Creates the environment for `rank` over `comm`.
    pub fn new(rank: usize, comm: &'c Communicator) -> Self {
        RankEnv {
            rank: rank as i64,
            comm,
        }
    }
}

impl Env for RankEnv<'_> {
    fn rank(&self) -> i64 {
        self.rank
    }

    fn size(&self) -> i64 {
        self.comm.size as i64
    }

    fn allreduce_sum_f(&mut self, v: f64) -> Result<f64, Trap> {
        self.comm.collective(|st| st.acc_f += v, |st| st.res_f)
    }

    fn allreduce_sum_i(&mut self, v: i64) -> Result<i64, Trap> {
        self.comm
            .collective(|st| st.acc_i = st.acc_i.wrapping_add(v), |st| st.res_i)
    }

    fn allreduce_max_f(&mut self, v: f64) -> Result<f64, Trap> {
        self.comm
            .collective(|st| st.acc_max = st.acc_max.max(v), |st| st.res_max)
    }

    fn barrier(&mut self) -> Result<(), Trap> {
        self.comm.collective(|_| {}, |_| ())
    }

    fn allgather_f(&mut self, chunk: Vec<f64>, lo: usize, n: usize) -> Result<Vec<f64>, Trap> {
        self.comm.collective(
            move |st| {
                if st.gather.len() < n {
                    st.gather.resize(n, 0.0);
                }
                // Clamp against the *current* buffer: a fault-corrupted
                // rank may pass a mismatched (lo, n); desynchronized data
                // must surface as corruption or an abort, never as a
                // panic that poisons the communicator mutex.
                let len = st.gather.len();
                let lo = lo.min(len);
                let hi = (lo + chunk.len()).min(len);
                st.gather[lo..hi].copy_from_slice(&chunk[..hi - lo]);
            },
            |st| st.res_gather.clone(),
        )
    }

    fn allreduce_vec_f(&mut self, v: Vec<f64>) -> Result<Vec<f64>, Trap> {
        self.comm.collective(
            move |st| {
                if st.acc_vec_f.len() != v.len() {
                    st.acc_vec_f = vec![0.0; v.len()];
                }
                for (a, b) in st.acc_vec_f.iter_mut().zip(&v) {
                    *a += b;
                }
            },
            |st| st.res_vec_f.clone(),
        )
    }

    fn allreduce_vec_i(&mut self, v: Vec<i64>) -> Result<Vec<i64>, Trap> {
        self.comm.collective(
            move |st| {
                if st.acc_vec_i.len() != v.len() {
                    st.acc_vec_i = vec![0; v.len()];
                }
                for (a, b) in st.acc_vec_i.iter_mut().zip(&v) {
                    *a = a.wrapping_add(*b);
                }
            },
            |st| st.res_vec_i.clone(),
        )
    }

    fn poisoned(&self) -> bool {
        self.comm.is_poisoned()
    }

    fn poison(&mut self) {
        self.comm.poison();
    }
}

/// Runs `module` as an SPMD job over `ranks` ranks. `injection`, when
/// present, plants a fault into the given rank's run.
///
/// # Errors
///
/// Returns [`RunError`] for configuration problems (bad entry name or
/// arguments); runtime faults are reported in the per-rank statuses.
pub fn run_mpi_job(
    module: &Module,
    ranks: usize,
    config: &RunConfig,
    injection: Option<(usize, Injection)>,
) -> Result<JobResult, RunError> {
    assert!(ranks >= 1, "a job needs at least one rank");
    let comm = Communicator::new(ranks);
    let results: Vec<Mutex<Option<Result<RunOutput, RunError>>>> =
        (0..ranks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for rank in 0..ranks {
            let comm = &comm;
            let results = &results;
            let mut rank_config = config.clone();
            if let Some((target_rank, inj)) = injection {
                if target_rank == rank {
                    rank_config.injection = Some(inj);
                } else {
                    rank_config.injection = None;
                }
            }
            scope.spawn(move || {
                let mut env = RankEnv::new(rank, comm);
                let mut machine = Machine::new(module);
                let out = machine.run_with_env(&rank_config, &mut env);
                comm.rank_finished();
                *results[rank].lock().expect("result slot") = Some(out);
            });
        }
    });

    let mut rank_outputs: Vec<RunOutput> = Vec::with_capacity(ranks);
    for slot in results {
        let out = slot
            .into_inner()
            .expect("scope joined")
            .expect("slot filled")?;
        rank_outputs.push(out);
    }

    let mut status = RunStatus::Completed(None);
    for out in &rank_outputs {
        match out.status {
            RunStatus::Completed(_) => {}
            // Prefer reporting a primary failure over secondary aborts.
            RunStatus::Trapped(Trap::MpiAbort) => {
                if status.is_completed() {
                    status = out.status;
                }
            }
            other => {
                status = other;
                break;
            }
        }
    }
    let max_rank_insts = rank_outputs
        .iter()
        .map(|o| o.dynamic_insts)
        .max()
        .unwrap_or(0);
    let total_insts = rank_outputs.iter().map(|o| o.dynamic_insts).sum();
    Ok(JobResult {
        rank_outputs,
        status,
        max_rank_insts,
        total_insts,
    })
}

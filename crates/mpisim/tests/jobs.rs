//! Multi-rank job tests: collectives, abort propagation, scalability.

use ipas_interp::{Injection, RtVal, RunConfig};
use ipas_mpisim::run_mpi_job;

#[test]
fn allreduce_sums_across_ranks() {
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let mine: int = mpi_rank() + 1;
    let total: int = allreduce_sum_i(mine);
    if (mpi_rank() == 0) { output_i(total); }
    return 0;
}
"#,
    )
    .unwrap();
    for ranks in [1, 2, 3, 8] {
        let job = run_mpi_job(&module, ranks, &RunConfig::default(), None).unwrap();
        assert!(job.status.is_completed());
        let expect = (ranks * (ranks + 1) / 2) as i64;
        assert_eq!(
            job.rank_outputs[0].outputs.as_ints(),
            vec![expect],
            "ranks={ranks}"
        );
        // Non-root ranks emit nothing.
        for r in 1..ranks {
            assert!(job.rank_outputs[r].outputs.is_empty());
        }
    }
}

#[test]
fn allgather_assembles_blocks() {
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let n: int = 8;
    let a: [float] = new_float(n);
    let rank: int = mpi_rank();
    let size: int = mpi_size();
    let lo: int = rank * n / size;
    let hi: int = (rank + 1) * n / size;
    for (let i: int = lo; i < hi; i = i + 1) { a[i] = itof(i * 10); }
    allgather_f(a, n);
    if (rank == 0) {
        for (let i: int = 0; i < n; i = i + 1) { output_f(a[i]); }
    }
    free_arr(a);
    return 0;
}
"#,
    )
    .unwrap();
    for ranks in [1, 2, 4, 8] {
        let job = run_mpi_job(&module, ranks, &RunConfig::default(), None).unwrap();
        assert!(job.status.is_completed(), "ranks={ranks}: {:?}", job.status);
        let got = job.rank_outputs[0].outputs.as_floats();
        let expect: Vec<f64> = (0..8).map(|i| (i * 10) as f64).collect();
        assert_eq!(got, expect, "ranks={ranks}");
    }
}

#[test]
fn allreduce_arr_merges_histograms() {
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let counts: [int] = new_int(4);
    counts[mpi_rank() % 4] = 1;
    allreduce_arr_i(counts, 4);
    if (mpi_rank() == 0) {
        for (let k: int = 0; k < 4; k = k + 1) { output_i(counts[k]); }
    }
    free_arr(counts);
    return 0;
}
"#,
    )
    .unwrap();
    let job = run_mpi_job(&module, 4, &RunConfig::default(), None).unwrap();
    assert_eq!(job.rank_outputs[0].outputs.as_ints(), vec![1, 1, 1, 1]);
}

#[test]
fn trap_on_one_rank_aborts_the_job() {
    // Rank 1 divides by zero before the collective; the others must
    // abort instead of deadlocking.
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let r: int = mpi_rank();
    if (r == 1) {
        let z: int = r - 1;
        output_i(4 / z);
    }
    barrier();
    return 0;
}
"#,
    )
    .unwrap();
    let job = run_mpi_job(&module, 4, &RunConfig::default(), None).unwrap();
    assert!(job.status.is_symptom(), "{:?}", job.status);
}

#[test]
fn desynchronized_collectives_poison_the_job() {
    // Rank 0 skips the barrier entirely: certain deadlock without the
    // finished-rank detection.
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    if (mpi_rank() > 0) { barrier(); }
    return 0;
}
"#,
    )
    .unwrap();
    let job = run_mpi_job(&module, 3, &RunConfig::default(), None).unwrap();
    assert!(job.status.is_symptom(), "{:?}", job.status);
}

#[test]
fn injection_into_one_rank_can_abort_all() {
    // Corrupt rank 0's computation massively (pointer bit): its trap
    // must propagate to every rank.
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let a: [float] = new_float(16);
    let rank: int = mpi_rank();
    for (let i: int = 0; i < 16; i = i + 1) { a[i] = itof(i + rank); }
    let s: float = 0.0;
    for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; }
    let total: float = allreduce_sum_f(s);
    if (rank == 0) { output_f(total); }
    free_arr(a);
    return 0;
}
"#,
    )
    .unwrap();
    // Scan early sites with a high-bit flip until one traps (GEPs do).
    let mut aborted = None;
    for target in 0..40 {
        let job = run_mpi_job(
            &module,
            3,
            &RunConfig {
                max_insts: 1_000_000,
                ..RunConfig::default()
            },
            Some((0, Injection::at_global_index(target, 55))),
        )
        .unwrap();
        if job.status.is_symptom() {
            aborted = Some(job);
            break;
        }
    }
    let job = aborted.expect("some high-bit flip must trap rank 0");
    // Every other rank aborted rather than completing.
    for out in &job.rank_outputs[1..] {
        assert!(!out.status.is_completed(), "{:?}", out.status);
    }
}

#[test]
fn workloads_give_same_answers_at_any_rank_count() {
    // HPCCG's convergence result must be invariant to the rank count.
    let w = ipas_workloads::hpccg(4).unwrap();
    let config = RunConfig {
        entry: "main".into(),
        args: vec![RtVal::I64(4)],
        ..RunConfig::default()
    };
    let serial = run_mpi_job(&w.module, 1, &config, None).unwrap();
    let parallel = run_mpi_job(&w.module, 4, &config, None).unwrap();
    assert!(serial.status.is_completed());
    assert!(parallel.status.is_completed());
    let e1 = serial.rank_outputs[0].outputs.as_floats()[0];
    let e4 = parallel.rank_outputs[0].outputs.as_floats()[0];
    assert!(
        (e1 - e4).abs() < 1e-9,
        "convergence differs across rank counts: {e1} vs {e4}"
    );
}

#[test]
fn strong_scaling_reduces_per_rank_work() {
    let w = ipas_workloads::comd(3).unwrap();
    let config = RunConfig {
        entry: "main".into(),
        args: vec![RtVal::I64(3)],
        ..RunConfig::default()
    };
    let one = run_mpi_job(&w.module, 1, &config, None).unwrap();
    let four = run_mpi_job(&w.module, 4, &config, None).unwrap();
    assert!(one.status.is_completed() && four.status.is_completed());
    // The O(N²) force loop dominates: 4 ranks should cut the critical
    // path well below the serial count.
    assert!(
        four.max_rank_insts * 2 < one.max_rank_insts,
        "serial {} vs 4-rank max {}",
        one.max_rank_insts,
        four.max_rank_insts
    );
    // Energies match.
    let e1 = one.rank_outputs[0].outputs.as_floats();
    let e4 = four.rank_outputs[0].outputs.as_floats();
    for (a, b) in e1.iter().zip(&e4) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn protected_job_slowdown_is_stable_across_ranks() {
    // The heart of Figure 8: protect CoMD fully, then verify that the
    // slowdown (protected / unprotected critical path) stays roughly
    // constant as ranks increase.
    let w = ipas_workloads::comd(3).unwrap();
    let (protected, _) = ipas_core::ProtectionPolicy::FullDuplication.apply(&w.module);
    let config = RunConfig {
        entry: "main".into(),
        args: vec![RtVal::I64(3)],
        ..RunConfig::default()
    };
    let mut slowdowns = Vec::new();
    for ranks in [1, 2, 4] {
        let base = run_mpi_job(&w.module, ranks, &config, None).unwrap();
        let prot = run_mpi_job(&protected, ranks, &config, None).unwrap();
        assert!(prot.status.is_completed());
        slowdowns.push(prot.max_rank_insts as f64 / base.max_rank_insts as f64);
    }
    let min = slowdowns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = slowdowns.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.15,
        "slowdown should be flat across ranks: {slowdowns:?}"
    );
}

//! Engine bit-identity at campaign scale.
//!
//! The `engine` knob on [`CampaignConfig`] is a pure throughput choice:
//! the same seed must yield *byte-identical* campaign results whether
//! plans execute on the tree-walking reference or the pre-decoded
//! engine, at any thread count. These tests run the full cross product
//! on workloads chosen to exercise every outcome class — clean SOC/
//! Masked splits, pointer traps, and budget hangs — plus the resilience
//! machinery (verifier panics, retries, wall-clock watchdogs) under the
//! compiled engine.

use std::time::Duration;

use ipas_faultsim::{
    run_campaign, run_campaign_with, CampaignConfig, CampaignOptions, CampaignResult, Engine,
    FaultModel, GoldenToleranceVerifier, Outcome, OutputVerifier, RetryPolicy, Workload,
};
use ipas_interp::RunOutput;

const SUM_SRC: &str = r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 200; i = i + 1) {
        s = s + i * i - i / 3;
    }
    output_i(s);
    return 0;
}
"#;

/// Pointer chasing: GEP corruption traps, covering Symptom records.
const PTR_SRC: &str = r#"
fn main() -> int {
    let a: [int] = new_int(64);
    for (let i: int = 0; i < 64; i = i + 1) { a[i] = i * 3; }
    let s: int = 0;
    for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#;

/// A countdown loop whose corrupted counter spins into the instruction
/// budget, covering Hang→Symptom records.
const HANG_SRC: &str = r#"
fn main() -> int {
    let i: int = 20000;
    while (i > 0) { i = i - 1; }
    output_i(i);
    return 0;
}
"#;

fn workload(name: &str, src: &str) -> Workload {
    let module = ipas_lang::compile(src).unwrap();
    Workload::serial(name, module, GoldenToleranceVerifier::EXACT).unwrap()
}

/// Runs the same campaign across both engines and threads {1, 4} and
/// asserts all four results are byte-identical.
fn assert_engine_identity(w: &Workload, runs: usize, seed: u64) -> CampaignResult {
    assert_engine_identity_model(w, runs, seed, FaultModel::SingleBit)
}

/// [`assert_engine_identity`] under an explicit fault model.
fn assert_engine_identity_model(
    w: &Workload,
    runs: usize,
    seed: u64,
    fault_model: FaultModel,
) -> CampaignResult {
    let mut results: Vec<(String, CampaignResult)> = Vec::new();
    for engine in Engine::ALL {
        for threads in [1usize, 4] {
            let r = run_campaign(
                w,
                &CampaignConfig {
                    runs,
                    seed,
                    threads,
                    engine,
                    fault_model,
                },
            )
            .expect("campaign completes");
            results.push((format!("{engine}/threads={threads}"), r));
        }
    }
    let (base_label, base) = results.swap_remove(0);
    for (label, r) in &results {
        assert_eq!(
            &base.records, &r.records,
            "records differ: {base_label} vs {label} on {}",
            w.name
        );
        assert_eq!(
            &base.harness_failures, &r.harness_failures,
            "harness failures differ: {base_label} vs {label} on {}",
            w.name
        );
    }
    base
}

#[test]
fn campaign_records_are_engine_and_thread_invariant() {
    let sum = assert_engine_identity(&workload("sum", SUM_SRC), 64, 11);
    assert!(sum.count(Outcome::Soc) > 0, "sum flips must reach outputs");

    let ptr = assert_engine_identity(&workload("ptr", PTR_SRC), 96, 9);
    assert!(
        ptr.count(Outcome::Symptom) > 0,
        "pointer faults must produce symptoms under both engines"
    );

    let hang = assert_engine_identity(&workload("countdown", HANG_SRC), 96, 17);
    assert!(
        hang.count(Outcome::Symptom) > 0,
        "budget hangs must classify as symptoms under both engines"
    );
}

/// Campaign-scale bit identity for every pluggable fault model: the
/// pointer workload exercises all four site classes (value results,
/// loads, stores, conditional branches), and each model's campaign must
/// be byte-identical across engine × thread-count, at multiple seeds.
#[test]
fn every_fault_model_is_engine_and_thread_invariant() {
    let w = workload("ptr", PTR_SRC);
    for model in FaultModel::ALL {
        for seed in [7u64, 20260809] {
            let r = assert_engine_identity_model(&w, 40, seed, model);
            assert_eq!(r.records.len(), 40, "{model}/seed {seed}: lost records");
            for rec in &r.records {
                assert_eq!(
                    rec.model, model,
                    "{model}/seed {seed}: record carries wrong model"
                );
            }
        }
    }
    // Wider bursts draw from the same plan sequence but corrupt more
    // bits; the campaigns must differ (the width genuinely matters) and
    // still be engine-invariant.
    let burst5 = assert_engine_identity_model(&w, 40, 7, FaultModel::MultiBitBurst { width: 5 });
    let burst2 = assert_engine_identity_model(&w, 40, 7, FaultModel::MultiBitBurst { width: 2 });
    assert_ne!(
        burst5.records, burst2.records,
        "burst width must change campaign outcomes"
    );
}

/// A deliberately buggy verifier: it crashes on corrupted outputs whose
/// leading value is even, modelling an unhandled edge case in
/// user-supplied verification code.
struct PanickingVerifier {
    golden: Vec<i64>,
}

impl OutputVerifier for PanickingVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let ints = run.outputs.as_ints();
        if ints == self.golden {
            return true;
        }
        if ints.first().is_some_and(|v| v % 2 == 0) {
            panic!("verifier bug: even corrupted output");
        }
        false
    }
}

fn panicking_workload() -> Workload {
    let module = ipas_lang::compile(SUM_SRC).unwrap();
    Workload::with_custom_verifier("sum-panicky", module, "main", vec![], |golden| {
        Box::new(PanickingVerifier {
            golden: golden.outputs.as_ints(),
        })
    })
    .unwrap()
}

/// Verifier panics under the compiled engine must degrade to the exact
/// same retried [`HarnessFailure`] set as under the reference engine:
/// panic isolation catches the unwind, the retry policy burns the full
/// deterministic budget, and clean plans still classify on attempt 1.
#[test]
fn panicking_verifier_fails_identically_on_both_engines() {
    let w = panicking_workload();
    let options = CampaignOptions {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..CampaignOptions::default()
    };
    let mut per_engine = Vec::new();
    for engine in Engine::ALL {
        let cfg = CampaignConfig {
            runs: 48,
            seed: 17,
            threads: 2,
            engine,
            ..CampaignConfig::default()
        };
        let r = run_campaign_with(&w, &cfg, &options).expect("campaign completes despite panics");
        assert_eq!(r.records.len() + r.harness_failures.len(), 48);
        assert!(
            !r.harness_failures.is_empty(),
            "{engine}: no harness failures seen"
        );
        for f in &r.harness_failures {
            assert_eq!(f.attempts, 2, "{engine}: {f}");
            assert!(f.error.contains("panic"), "{engine}: {}", f.error);
        }
        for rec in &r.records {
            assert_eq!(rec.attempts, 1, "{engine}: surviving record retried");
        }
        per_engine.push(r);
    }
    let [a, b] = per_engine.try_into().expect("two engines");
    assert_eq!(a.records, b.records);
    assert_eq!(a.harness_failures, b.harness_failures);
}

/// The wall-clock watchdog must compose with the compiled engine: a
/// generous deadline perturbs nothing (still bit-identical to the
/// reference), while the deadline poll still fires on the same cadence
/// as the reference engine's.
#[test]
fn watchdog_deadline_is_engine_invariant() {
    let w = workload("sum", SUM_SRC);
    let options = CampaignOptions {
        run_deadline: Some(Duration::from_secs(3600)),
        ..CampaignOptions::default()
    };
    let mut per_engine = Vec::new();
    for engine in Engine::ALL {
        let cfg = CampaignConfig {
            runs: 32,
            seed: 3,
            threads: 2,
            engine,
            ..CampaignConfig::default()
        };
        let guarded = run_campaign_with(&w, &cfg, &options).expect("guarded campaign completes");
        let plain = run_campaign(&w, &cfg).expect("plain campaign completes");
        assert_eq!(
            guarded.records, plain.records,
            "{engine}: generous deadline perturbed outcomes"
        );
        per_engine.push(guarded);
    }
    let [a, b] = per_engine.try_into().expect("two engines");
    assert_eq!(a.records, b.records);
}

/// An already-expired deadline stops compiled-engine runs at the first
/// poison poll exactly as it stops the reference: no run gets past the
/// poll interval, so any plan whose target fires early classifies as a
/// hang ([`Outcome::Symptom`]) and every later target degrades to a
/// "never reached" harness failure — identically on both engines. The
/// countdown workload runs well past the poll interval, so without the
/// deadline every plan would classify normally.
#[test]
fn expired_deadline_hangs_every_run_on_both_engines() {
    let w = workload("countdown", HANG_SRC);
    let options = CampaignOptions {
        run_deadline: Some(Duration::ZERO),
        retry: RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..CampaignOptions::default()
    };
    let mut per_engine = Vec::new();
    for engine in Engine::ALL {
        let cfg = CampaignConfig {
            runs: 12,
            seed: 5,
            threads: 2,
            engine,
            ..CampaignConfig::default()
        };
        let r = run_campaign_with(&w, &cfg, &options).expect("campaign completes");
        assert_eq!(
            r.records.len() + r.harness_failures.len(),
            12,
            "{engine}: every plan accounted for"
        );
        assert!(
            !r.harness_failures.is_empty(),
            "{engine}: deadline never cut a run short"
        );
        for rec in &r.records {
            assert_eq!(
                rec.outcome,
                Outcome::Symptom,
                "{engine}: expired deadline must classify early-firing plans as hangs"
            );
        }
        for f in &r.harness_failures {
            assert!(
                f.error.contains("never reached"),
                "{engine}: unexpected failure: {}",
                f.error
            );
        }
        per_engine.push(r);
    }
    let [a, b] = per_engine.try_into().expect("two engines");
    assert_eq!(a.records, b.records);
    assert_eq!(a.harness_failures, b.harness_failures);
}

//! Backward-compatibility golden test for the default fault model.
//!
//! The pluggable fault-model plumbing must not perturb the paper's
//! single-bit protocol: the RNG draw sequence, site enumeration, and
//! corruption semantics all predate the `FaultModel` knob, so a
//! `--fault-model single-bit` campaign has to reproduce the exact
//! record stream the pre-fault-model code emitted. The expected tuples
//! below were captured from that code (runs=32, seed=20260809,
//! threads=1) and are frozen here verbatim — they cannot be
//! regenerated, only matched. Any diff means the single-bit path is no
//! longer byte-identical to published artifacts.

use ipas_faultsim::{
    run_campaign, CampaignConfig, Engine, FaultModel, GoldenToleranceVerifier, Outcome, Workload,
};

const SUM_SRC: &str = r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 200; i = i + 1) {
        s = s + i * i - i / 3;
    }
    output_i(s);
    return 0;
}
"#;

const PTR_SRC: &str = r#"
fn main() -> int {
    let a: [int] = new_int(64);
    for (let i: int = 0; i < 64; i = i + 1) { a[i] = i * 3; }
    let s: int = 0;
    for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#;

/// `(func_idx, inst_idx, target, bit, outcome, dynamic_insts, attempts)`
/// per record, in campaign order. Latency is excluded (wall-clock).
type GoldenRecord = (usize, usize, u64, u32, Outcome, u64, u32);

/// Captured from the pre-fault-model seed revision; see module docs.
const SUM_GOLDEN: [GoldenRecord; 32] = [
    (0, 11, 685, 47, Outcome::Soc, 2007, 1),
    (0, 19, 197, 45, Outcome::Soc, 337, 1),
    (0, 19, 683, 37, Outcome::Soc, 1147, 1),
    (0, 6, 576, 6, Outcome::Soc, 967, 1),
    (0, 11, 79, 52, Outcome::Soc, 2007, 1),
    (0, 15, 454, 0, Outcome::Soc, 2007, 1),
    (0, 11, 133, 32, Outcome::Soc, 2007, 1),
    (0, 19, 839, 58, Outcome::Soc, 1407, 1),
    (0, 14, 549, 43, Outcome::Soc, 2007, 1),
    (0, 12, 242, 54, Outcome::Soc, 2007, 1),
    (0, 11, 133, 37, Outcome::Soc, 2007, 1),
    (0, 11, 325, 27, Outcome::Soc, 2007, 1),
    (0, 11, 757, 17, Outcome::Soc, 2007, 1),
    (0, 6, 474, 4, Outcome::Soc, 797, 1),
    (0, 19, 725, 50, Outcome::Soc, 1217, 1),
    (0, 14, 69, 55, Outcome::Soc, 2007, 1),
    (0, 12, 566, 58, Outcome::Soc, 2007, 1),
    (0, 14, 519, 54, Outcome::Soc, 2007, 1),
    (0, 14, 1173, 17, Outcome::Soc, 2007, 1),
    (0, 19, 299, 18, Outcome::Soc, 507, 1),
    (0, 6, 864, 41, Outcome::Soc, 1447, 1),
    (0, 6, 498, 10, Outcome::Soc, 837, 1),
    (0, 12, 1190, 29, Outcome::Soc, 2007, 1),
    (0, 14, 663, 47, Outcome::Soc, 2007, 1),
    (0, 12, 848, 30, Outcome::Soc, 2007, 1),
    (0, 19, 41, 26, Outcome::Soc, 77, 1),
    (0, 6, 1014, 6, Outcome::Soc, 1697, 1),
    (0, 19, 713, 60, Outcome::Soc, 1197, 1),
    (0, 15, 694, 28, Outcome::Soc, 2007, 1),
    (0, 15, 490, 52, Outcome::Soc, 2007, 1),
    (0, 6, 666, 53, Outcome::Soc, 1117, 1),
    (0, 15, 664, 20, Outcome::Soc, 2007, 1),
];

/// Captured from the pre-fault-model seed revision; see module docs.
const PTR_GOLDEN: [GoldenRecord; 32] = [
    (0, 27, 294, 47, Outcome::Soc, 606, 1),
    (0, 18, 84, 45, Outcome::Soc, 757, 1),
    (0, 34, 292, 37, Outcome::Soc, 1101, 1),
    (0, 14, 247, 6, Outcome::Soc, 1101, 1),
    (0, 12, 34, 52, Outcome::Symptom, 72, 1),
    (0, 12, 194, 0, Outcome::Symptom, 392, 1),
    (0, 8, 57, 32, Outcome::Soc, 701, 1),
    (0, 32, 359, 58, Outcome::Symptom, 749, 1),
    (0, 14, 235, 43, Outcome::Soc, 1101, 1),
    (0, 18, 104, 54, Outcome::Soc, 797, 1),
    (0, 8, 57, 37, Outcome::Soc, 701, 1),
    (0, 14, 139, 27, Outcome::Soc, 1101, 1),
    (0, 34, 324, 17, Outcome::Soc, 1101, 1),
    (0, 14, 203, 4, Outcome::Soc, 1101, 1),
    (0, 32, 311, 50, Outcome::Symptom, 641, 1),
    (0, 8, 29, 55, Outcome::Soc, 645, 1),
    (0, 12, 242, 58, Outcome::Symptom, 488, 1),
    (0, 12, 222, 54, Outcome::Symptom, 448, 1),
    (0, 32, 503, 17, Outcome::Symptom, 1073, 1),
    (0, 18, 128, 18, Outcome::Soc, 845, 1),
    (0, 27, 370, 41, Outcome::Soc, 777, 1),
    (0, 8, 213, 10, Outcome::Soc, 1013, 1),
    (0, 27, 510, 29, Outcome::Soc, 1092, 1),
    (0, 34, 284, 47, Outcome::Soc, 1101, 1),
    (0, 34, 364, 30, Outcome::Soc, 1101, 1),
    (0, 8, 17, 26, Outcome::Soc, 621, 1),
    (0, 32, 435, 6, Outcome::Soc, 1101, 1),
    (0, 38, 305, 60, Outcome::Soc, 633, 1),
    (0, 38, 297, 28, Outcome::Soc, 615, 1),
    (0, 12, 210, 52, Outcome::Symptom, 424, 1),
    (0, 38, 285, 53, Outcome::Soc, 588, 1),
    (0, 38, 285, 20, Outcome::Soc, 588, 1),
];

fn assert_matches_golden(src: &str, name: &str, golden: &[GoldenRecord]) {
    let module = ipas_lang::compile(src).unwrap();
    let workload = Workload::serial(name, module, GoldenToleranceVerifier::EXACT).unwrap();
    for engine in Engine::ALL {
        let config = CampaignConfig {
            runs: 32,
            seed: 20260809,
            threads: 1,
            engine,
            fault_model: FaultModel::SingleBit,
        };
        let result = run_campaign(&workload, &config).expect("campaign completes");
        assert!(
            result.harness_failures.is_empty(),
            "{name}/{engine}: unexpected harness failures"
        );
        assert_eq!(result.records.len(), golden.len(), "{name}/{engine}");
        for (i, (rec, want)) in result.records.iter().zip(golden).enumerate() {
            let got = (
                rec.site.0.index(),
                rec.site.1.index(),
                rec.target,
                rec.bit,
                rec.outcome,
                rec.dynamic_insts,
                rec.attempts,
            );
            assert_eq!(
                got, *want,
                "{name}/{engine}: record {i} diverged from the pre-fault-model capture"
            );
            assert_eq!(
                rec.model,
                FaultModel::SingleBit,
                "{name}/{engine}: record {i}"
            );
        }
    }
}

/// A `--fault-model single-bit` campaign (and the default, which must
/// be the same thing) reproduces pre-fault-model campaigns byte for
/// byte on both engines.
#[test]
fn single_bit_campaigns_match_pre_fault_model_capture() {
    assert_eq!(CampaignConfig::default().fault_model, FaultModel::SingleBit);
    assert_matches_golden(SUM_SRC, "sum", &SUM_GOLDEN);
    assert_matches_golden(PTR_SRC, "ptr", &PTR_GOLDEN);
}

//! Campaign-level tests against small compiled workloads.

use ipas_faultsim::{
    classify, margin_of_error, run_campaign, CampaignConfig, GoldenToleranceVerifier, Outcome,
    Workload,
};
use ipas_interp::{Machine, RunConfig};

const SUM_SRC: &str = r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 200; i = i + 1) {
        s = s + i * i - i / 3;
    }
    output_i(s);
    return 0;
}
"#;

fn sum_workload() -> Workload {
    let module = ipas_lang::compile(SUM_SRC).unwrap();
    Workload::serial("sum", module, GoldenToleranceVerifier::EXACT).unwrap()
}

#[test]
fn golden_run_statistics_are_recorded() {
    let w = sum_workload();
    assert!(w.nominal_insts > 1000);
    assert!(w.eligible_results > 500);
    assert_eq!(w.golden.as_ints().len(), 1);
}

#[test]
fn campaign_classifies_every_run() {
    let w = sum_workload();
    let r = run_campaign(
        &w,
        &CampaignConfig {
            runs: 64,
            seed: 3,
            threads: 4,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    assert_eq!(r.records.len(), 64);
    let total: usize = Outcome::ALL.iter().map(|&o| r.count(o)).sum();
    assert_eq!(total, 64);
    // An unprotected workload cannot report Detected.
    assert_eq!(r.count(Outcome::Detected), 0);
    // Bit flips in an integer-sum kernel must produce at least some SOC
    // (most flips in `s` survive to the output).
    assert!(r.count(Outcome::Soc) > 0, "{:?}", r.records);
}

#[test]
fn campaigns_are_deterministic_across_thread_counts() {
    let w = sum_workload();
    let cfg1 = CampaignConfig {
        runs: 32,
        seed: 11,
        threads: 1,
        ..CampaignConfig::default()
    };
    let cfg4 = CampaignConfig {
        runs: 32,
        seed: 11,
        threads: 4,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&w, &cfg1).expect("campaign completes");
    let b = run_campaign(&w, &cfg4).expect("campaign completes");
    assert_eq!(a.records, b.records);
    assert!(a.harness_failures.is_empty() && b.harness_failures.is_empty());
}

#[test]
fn different_seeds_differ() {
    let w = sum_workload();
    let a = run_campaign(
        &w,
        &CampaignConfig {
            runs: 32,
            seed: 1,
            threads: 2,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    let b = run_campaign(
        &w,
        &CampaignConfig {
            runs: 32,
            seed: 2,
            threads: 2,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    assert_ne!(a.records, b.records);
}

#[test]
fn sites_are_recorded_and_valid() {
    let w = sum_workload();
    let r = run_campaign(
        &w,
        &CampaignConfig {
            runs: 16,
            seed: 5,
            threads: 2,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    for rec in &r.records {
        let (fid, iid) = rec.site;
        let f = w.module.function(fid);
        assert!(iid.index() < f.num_inst_slots());
        assert!(ipas_interp::is_fault_site(f.inst(iid)));
    }
}

#[test]
fn margin_of_error_formula() {
    // 5% SOC over 1024 runs: ~1.34% (the FFT row of §6.2).
    let moe = margin_of_error(0.05, 1024);
    assert!((moe - 0.01335).abs() < 0.0005, "{moe}");
    assert_eq!(margin_of_error(0.0, 100), 0.0);
    assert_eq!(margin_of_error(1.0, 100), 0.0);
}

#[test]
fn margin_of_error_degenerate_inputs_are_zero_not_nan() {
    // Zero samples: the variance term divides by n, so the old code
    // returned NaN (and before that, a meaningless 1.0). Degenerate
    // inputs must report an exact 0.0 so table math stays finite.
    assert_eq!(margin_of_error(0.5, 0), 0.0);
    assert_eq!(margin_of_error(0.0, 0), 0.0);
    // Proportions outside [0, 1] put a negative value under the square
    // root; 0.0, never NaN.
    assert_eq!(margin_of_error(-0.1, 64), 0.0);
    assert_eq!(margin_of_error(1.5, 64), 0.0);
    assert_eq!(margin_of_error(f64::NAN, 64), 0.0);
    assert!(!margin_of_error(0.5, 0).is_nan());
}

#[test]
fn length_mismatch_in_output_is_soc() {
    // A fault that corrupts the loop bound can change how many items are
    // emitted; the verifier must flag that as unacceptable.
    let module = ipas_lang::compile(
        "fn main() -> int { for (let i: int = 0; i < 3; i = i + 1) { output_i(i); } return 0; }",
    )
    .unwrap();
    let w = Workload::serial("emit3", module, GoldenToleranceVerifier::EXACT).unwrap();
    // Build a fake run with fewer outputs by running a different module.
    let short = ipas_lang::compile("fn main() -> int { output_i(0); return 0; }").unwrap();
    let out = Machine::new(&short).run(&RunConfig::default()).unwrap();
    assert_eq!(classify(&out, &*w.verifier), Outcome::Soc);
}

#[test]
fn nan_output_is_soc() {
    let module = ipas_lang::compile(
        "fn main() -> int { let x: float = itof(mpi_rank()) + 0.5; output_f(x + 1.0); return 0; }",
    )
    .unwrap();
    let w = Workload::serial("one", module, 1e-6).unwrap();
    let nan_module =
        ipas_lang::compile("fn main() -> int { let z: float = 0.0; output_f(z / z); return 0; }")
            .unwrap();
    let out = Machine::new(&nan_module)
        .run(&RunConfig::default())
        .unwrap();
    assert_eq!(classify(&out, &*w.verifier), Outcome::Soc);
}

#[test]
fn tolerance_masks_small_float_error() {
    let module = ipas_lang::compile(
        "fn main() -> int { let x: float = itof(mpi_rank()) + 50.0; output_f(x * 2.0); return 0; }",
    )
    .unwrap();
    let w = Workload::serial("v", module, 1e-3).unwrap();
    let close = ipas_lang::compile("fn main() -> int { output_f(100.05); return 0; }").unwrap();
    let far = ipas_lang::compile("fn main() -> int { output_f(101.0); return 0; }").unwrap();
    let out_close = Machine::new(&close).run(&RunConfig::default()).unwrap();
    let out_far = Machine::new(&far).run(&RunConfig::default()).unwrap();
    assert_eq!(classify(&out_close, &*w.verifier), Outcome::Masked);
    assert_eq!(classify(&out_far, &*w.verifier), Outcome::Soc);
}

#[test]
fn pointer_heavy_code_produces_symptoms() {
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let a: [int] = new_int(64);
    for (let i: int = 0; i < 64; i = i + 1) { a[i] = i; }
    let s: int = 0;
    for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#,
    )
    .unwrap();
    let w = Workload::serial("ptr", module, GoldenToleranceVerifier::EXACT).unwrap();
    let r = run_campaign(
        &w,
        &CampaignConfig {
            runs: 128,
            seed: 9,
            threads: 4,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    // GEP corruption should trap at least occasionally.
    assert!(
        r.count(Outcome::Symptom) > 0,
        "pointer faults should produce symptoms: {:?}",
        Outcome::ALL.map(|o| (o.label(), r.count(o)))
    );
}

#[test]
fn hang_detection_classifies_as_symptom() {
    // Corrupting the loop counter of a tight countdown loop can make it
    // spin far past the nominal count; the budget flags it.
    let module = ipas_lang::compile(
        "fn main() -> int { let i: int = 20000; while (i > 0) { i = i - 1; } output_i(i); return 0; }",
    )
    .unwrap();
    let w = Workload::serial("countdown", module, GoldenToleranceVerifier::EXACT).unwrap();
    let r = run_campaign(
        &w,
        &CampaignConfig {
            runs: 96,
            seed: 17,
            threads: 4,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    // With a sign/high-bit flip in `i`, the countdown never reaches 0
    // until wraparound: dynamic count explodes, flagged as Symptom.
    assert!(r.count(Outcome::Symptom) > 0);
}

#[test]
fn static_uniform_sampling_reaches_cold_sites() {
    use ipas_faultsim::{profile_sites, run_campaign_sampled, SamplingMode};
    use std::collections::HashMap;

    // A hot loop plus a cold once-executed epilogue: dynamic-uniform
    // sampling almost never hits the epilogue; static-uniform gives its
    // sites equal probability.
    let module = ipas_lang::compile(
        r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 500; i = i + 1) { s = s + i * i; }
    let a: int = s * 3 + 7;
    let b: int = a / 5 - 2;
    let c: int = b * b + a;
    let d: int = c % 1000 + b;
    output_i(d);
    return 0;
}
"#,
    )
    .unwrap();
    let w = Workload::serial("hotcold", module, GoldenToleranceVerifier::EXACT).unwrap();

    let cfg = CampaignConfig {
        runs: 200,
        seed: 21,
        threads: 2,
        ..CampaignConfig::default()
    };
    let dynamic =
        run_campaign_sampled(&w, &cfg, SamplingMode::DynamicUniform).expect("campaign completes");
    let statics =
        run_campaign_sampled(&w, &cfg, SamplingMode::StaticUniform).expect("campaign completes");

    let profile: HashMap<_, _> = profile_sites(&w)
        .expect("profiling runs")
        .into_iter()
        .collect();
    let cold_hits = |r: &ipas_faultsim::CampaignResult| {
        r.records
            .iter()
            .filter(|rec| profile.get(&rec.site).copied().unwrap_or(0) == 1)
            .count()
    };
    let cold_dyn = cold_hits(&dynamic);
    let cold_stat = cold_hits(&statics);
    // Several cold sites out of ~10 executed sites: static-uniform must
    // hit them a large number of times; dynamic-uniform almost never
    // (cold sites are ~5 of ~2500 dynamic results).
    assert!(
        cold_stat > cold_dyn + 20,
        "static-uniform should reach cold sites: static {cold_stat} vs dynamic {cold_dyn}"
    );
    // Profiled counts cover every sampled site.
    for rec in &statics.records {
        assert!(profile.contains_key(&rec.site));
    }
}

#[test]
fn site_targeted_injection_hits_requested_site() {
    use ipas_faultsim::profile_sites;
    use ipas_interp::{Injection, Machine, RunConfig};

    let w = sum_workload();
    let profile = profile_sites(&w).expect("profiling runs");
    let (site, count) = profile[profile.len() / 2];
    let mut m = Machine::new(&w.module);
    let out = m
        .run(&RunConfig {
            injection: Some(Injection::at_site(site, count - 1, 3)),
            ..RunConfig::default()
        })
        .unwrap();
    assert_eq!(out.injected_site, Some(site));
}

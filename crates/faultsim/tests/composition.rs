//! Compositional equivalence of sectional campaigns.
//!
//! A section-granular campaign is a *partition* of the monolithic plan
//! list, not a different experiment: the plans are drawn once from the
//! campaign seed, grouped by section, executed group by group, and
//! spliced back in plan order. These tests pin that contract on the
//! five paper workloads under both execution engines — the composed
//! result must be byte-identical to the monolithic campaign: the same
//! records (site, target, bit, outcome, dynamic instructions, latency,
//! attempts), the same harness-failure set, and therefore the same
//! SOC/DDC/benign counts.

use ipas_faultsim::sections::run_campaign_sectional;
use ipas_faultsim::{
    run_campaign_with, CampaignConfig, CampaignOptions, Engine, FaultModel, Outcome,
};
use ipas_workloads::Kind;

const RUNS: usize = 18;
const SEED: u64 = 20260809;

#[test]
fn sectional_campaigns_match_monolithic_on_every_paper_workload() {
    let options = CampaignOptions::default();
    for kind in Kind::ALL {
        let workload = kind.build(kind.base_input()).expect("workload builds");
        for engine in Engine::ALL {
            let config = CampaignConfig {
                runs: RUNS,
                seed: SEED,
                threads: 2,
                engine,
                fault_model: FaultModel::default(),
            };
            let mono = run_campaign_with(&workload, &config, &options).expect("monolithic runs");
            let comp =
                run_campaign_sectional(&workload, &config, &options).expect("sectional runs");

            // The partition must be real — a paper workload is never a
            // single section, otherwise the test degenerates.
            assert!(
                comp.partition.len() > 1,
                "{}: expected a multi-section partition, got {}",
                kind.name(),
                comp.partition.len()
            );
            let assigned: usize = (0..comp.partition.len() as u32)
                .map(|s| comp.plans_in_section(s))
                .sum();
            assert_eq!(
                assigned,
                RUNS,
                "{}/{engine}: every plan belongs to exactly one section",
                kind.name()
            );

            // Byte-identical composition: records carry the spliced
            // plan order, so plain equality covers ordering too.
            assert_eq!(
                mono.records,
                comp.result.records,
                "{}/{engine}: composed records diverge from monolithic",
                kind.name()
            );
            assert_eq!(
                mono.harness_failures,
                comp.result.harness_failures,
                "{}/{engine}: composed failures diverge from monolithic",
                kind.name()
            );
            assert_eq!(mono.nominal_insts, comp.result.nominal_insts);
            for outcome in Outcome::ALL {
                assert_eq!(
                    mono.count(outcome),
                    comp.result.count(outcome),
                    "{}/{engine}: {outcome:?} count diverges",
                    kind.name()
                );
            }
        }
    }
}

/// The composed result must be a function of the seed exactly like the
/// monolithic one: a different seed changes both identically, and the
/// sectional path introduces no seed-dependence of its own.
#[test]
fn sectional_composition_tracks_the_seed() {
    let workload = Kind::Fft.build(Kind::Fft.base_input()).expect("fft builds");
    let options = CampaignOptions::default();
    let config = |seed: u64| CampaignConfig {
        runs: RUNS,
        seed,
        threads: 2,
        engine: Engine::default(),
        fault_model: FaultModel::default(),
    };
    let a = run_campaign_sectional(&workload, &config(SEED), &options).expect("seed A runs");
    let b = run_campaign_sectional(&workload, &config(SEED + 1), &options).expect("seed B runs");
    assert_ne!(
        a.result.records, b.result.records,
        "different seeds must draw different plans"
    );
    let mono = run_campaign_with(&workload, &config(SEED + 1), &options).expect("monolithic runs");
    assert_eq!(
        mono.records, b.result.records,
        "seed B composes identically to its monolithic campaign"
    );
}

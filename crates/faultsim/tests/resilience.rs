//! Resilience tests for the campaign runtime: panic isolation,
//! retry accounting, and journal-based checkpoint/resume.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use ipas_faultsim::{
    run_campaign, run_campaign_with, CampaignConfig, CampaignError, CampaignOptions,
    GoldenToleranceVerifier, JournalError, OutputVerifier, RetryPolicy, Workload,
};
use ipas_interp::RunOutput;

const SUM_SRC: &str = r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 200; i = i + 1) {
        s = s + i * i - i / 3;
    }
    output_i(s);
    return 0;
}
"#;

fn sum_workload() -> Workload {
    let module = ipas_lang::compile(SUM_SRC).unwrap();
    Workload::serial("sum", module, GoldenToleranceVerifier::EXACT).unwrap()
}

/// A unique scratch path for this test invocation.
fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ipas-resilience-tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}.jsonl", name, std::process::id()))
}

/// A deliberately buggy verifier: it crashes on corrupted outputs whose
/// leading value is even (modelling an unhandled edge case in
/// user-supplied verification code) and classifies the rest normally.
struct PanickingVerifier {
    golden: Vec<i64>,
}

impl OutputVerifier for PanickingVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let ints = run.outputs.as_ints();
        if ints == self.golden {
            return true;
        }
        if ints.first().is_some_and(|v| v % 2 == 0) {
            panic!("verifier bug: even corrupted output");
        }
        false
    }
}

fn panicking_workload() -> Workload {
    let module = ipas_lang::compile(SUM_SRC).unwrap();
    Workload::with_custom_verifier("sum-panicky", module, "main", vec![], |golden| {
        Box::new(PanickingVerifier {
            golden: golden.outputs.as_ints(),
        })
    })
    .unwrap()
}

/// A panicking verifier must poison individual plans, not the campaign:
/// every plan ends as either a record or a harness failure, retry
/// counts are deterministic, and the campaign still returns normally.
#[test]
fn panicking_verifier_degrades_to_harness_failures() {
    let w = panicking_workload();
    let cfg = CampaignConfig {
        runs: 48,
        seed: 17,
        threads: 2,
        ..CampaignConfig::default()
    };
    let options = CampaignOptions {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..CampaignOptions::default()
    };
    let a = run_campaign_with(&w, &cfg, &options).expect("campaign completes despite panics");
    assert_eq!(a.records.len() + a.harness_failures.len(), 48);
    // Flips in an integer-sum kernel must corrupt at least some outputs,
    // and each corrupt output trips the verifier panic.
    assert!(!a.harness_failures.is_empty(), "no harness failures seen");
    // Panics are deterministic, so every failed plan burned the full
    // retry budget, and surviving records classified on attempt 1.
    for f in &a.harness_failures {
        assert_eq!(f.attempts, 2, "{f}");
        assert!(f.error.contains("panic"), "unexpected error: {}", f.error);
    }
    assert!(!a.records.is_empty(), "campaign produced no records at all");
    for r in &a.records {
        assert_eq!(r.attempts, 1);
    }
    // The whole degradation is reproducible, retry counts included.
    let b = run_campaign_with(&w, &cfg, &options).expect("campaign completes despite panics");
    assert_eq!(a.records, b.records);
    assert_eq!(a.harness_failures, b.harness_failures);
}

/// Journalling half a campaign and re-invoking it must resume the
/// missing half and reproduce the uninterrupted run byte for byte.
#[test]
fn journal_resume_matches_uninterrupted_campaign() {
    let w = sum_workload();
    let cfg = CampaignConfig {
        runs: 48,
        seed: 9,
        threads: 1,
        ..CampaignConfig::default()
    };
    let uninterrupted = run_campaign(&w, &cfg).expect("campaign completes");

    // Produce a complete journal (threads: 1 appends in plan order),
    // then truncate it to the header plus the first half of the records
    // to simulate a campaign killed mid-flight.
    let full_path = scratch_path("resume-full");
    let _ = fs::remove_file(&full_path);
    let options = CampaignOptions {
        journal: Some(full_path.clone()),
        ..CampaignOptions::default()
    };
    run_campaign_with(&w, &cfg, &options).expect("journaled campaign completes");
    let text = fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 48, "header plus one line per record");
    let half_path = scratch_path("resume-half");
    fs::write(&half_path, format!("{}\n", lines[..1 + 24].join("\n"))).unwrap();

    // Resume from the half journal, on a different thread count.
    let resumed = run_campaign_with(
        &w,
        &CampaignConfig { threads: 4, ..cfg },
        &CampaignOptions {
            journal: Some(half_path.clone()),
            ..CampaignOptions::default()
        },
    )
    .expect("resumed campaign completes");
    assert_eq!(resumed.resumed, 24);
    assert_eq!(resumed.records, uninterrupted.records);
    assert!(resumed.harness_failures.is_empty());

    // A second re-invocation replays entirely from the journal.
    let replayed = run_campaign_with(
        &w,
        &cfg,
        &CampaignOptions {
            journal: Some(half_path.clone()),
            ..CampaignOptions::default()
        },
    )
    .expect("replayed campaign completes");
    assert_eq!(replayed.resumed, 48);
    assert_eq!(replayed.records, uninterrupted.records);

    let _ = fs::remove_file(&full_path);
    let _ = fs::remove_file(&half_path);
}

/// A torn final journal line (the process died mid-append) must be
/// tolerated on resume rather than rejected as corruption.
#[test]
fn torn_final_journal_line_is_tolerated() {
    let w = sum_workload();
    let cfg = CampaignConfig {
        runs: 32,
        seed: 5,
        threads: 1,
        ..CampaignConfig::default()
    };
    let uninterrupted = run_campaign(&w, &cfg).expect("campaign completes");

    let full_path = scratch_path("torn-full");
    let _ = fs::remove_file(&full_path);
    run_campaign_with(
        &w,
        &cfg,
        &CampaignOptions {
            journal: Some(full_path.clone()),
            ..CampaignOptions::default()
        },
    )
    .expect("journaled campaign completes");
    let text = fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    let torn_path = scratch_path("torn-half");
    let mut file = fs::File::create(&torn_path).unwrap();
    writeln!(file, "{}", lines[..1 + 16].join("\n")).unwrap();
    // Half of the next record line, no trailing newline.
    let next = lines[1 + 16];
    write!(file, "{}", &next[..next.len() / 2]).unwrap();
    drop(file);

    let resumed = run_campaign_with(
        &w,
        &cfg,
        &CampaignOptions {
            journal: Some(torn_path.clone()),
            ..CampaignOptions::default()
        },
    )
    .expect("resume tolerates a torn final line");
    assert_eq!(resumed.resumed, 16);
    assert_eq!(resumed.records, uninterrupted.records);

    let _ = fs::remove_file(&full_path);
    let _ = fs::remove_file(&torn_path);
}

/// A journal written by a different campaign (here: another seed) must
/// be rejected with a typed identity mismatch, not silently reused.
#[test]
fn journal_identity_mismatch_is_rejected() {
    let w = sum_workload();
    let path = scratch_path("mismatch");
    let _ = fs::remove_file(&path);
    let cfg = CampaignConfig {
        runs: 16,
        seed: 1,
        threads: 1,
        ..CampaignConfig::default()
    };
    let options = CampaignOptions {
        journal: Some(path.clone()),
        ..CampaignOptions::default()
    };
    run_campaign_with(&w, &cfg, &options).expect("journaled campaign completes");

    let err = run_campaign_with(&w, &CampaignConfig { seed: 2, ..cfg }, &options)
        .expect_err("mismatched journal must be rejected");
    match err {
        CampaignError::Journal(JournalError::Mismatch { field, .. }) => {
            assert_eq!(field, "seed");
        }
        other => panic!("expected identity mismatch, got: {other}"),
    }

    let _ = fs::remove_file(&path);
}

/// A generous per-run wall-clock deadline must not perturb outcomes.
#[test]
fn generous_run_deadline_leaves_outcomes_unchanged() {
    let w = sum_workload();
    let cfg = CampaignConfig {
        runs: 32,
        seed: 3,
        threads: 2,
        ..CampaignConfig::default()
    };
    let plain = run_campaign(&w, &cfg).expect("campaign completes");
    let guarded = run_campaign_with(
        &w,
        &cfg,
        &CampaignOptions {
            run_deadline: Some(Duration::from_secs(3600)),
            ..CampaignOptions::default()
        },
    )
    .expect("guarded campaign completes");
    assert_eq!(plain.records, guarded.records);
}

//! Section-granular (compositional) campaign execution.
//!
//! A classic campaign treats the workload as one opaque unit: `runs`
//! plans drawn from one seeded RNG, executed in any order, spliced back
//! by plan index. This module partitions the same campaign by *section*
//! — the loop-nest-granular units of
//! [`ipas_analysis::sections::SectionPartition`] — without changing a
//! single record:
//!
//! 1. the plan list is drawn exactly as [`crate::draw_plans`] draws it,
//!    so a sectional campaign and a classic campaign with the same seed
//!    share plans byte for byte;
//! 2. each plan is mapped to the section containing its injection site.
//!    Site-restricted plans carry the site directly; dynamic-instance
//!    plans are resolved through the clean run's run-length-encoded
//!    eligible trace ([`eligible_trace`]), whose prefix sums map any
//!    global eligible index back to its static site;
//! 3. the selected sections' plans execute on [`crate::PlanExecutor`]s
//!    — whose outcomes are invariant to chunking — and splice back into
//!    a [`CampaignResult`] by plan index.
//!
//! Because every plan is executed identically and merely *grouped*
//! differently, the composed result is byte-identical to the monolithic
//! one by construction (the `composition` integration test pins this
//! for every paper workload on both engines). The grouping is what
//! makes incremental re-analysis possible: a cached section whose
//! fingerprint and plan slice are unchanged can be spliced in without
//! re-executing it (see `ipas-core`'s incremental driver).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use ipas_analysis::sections::SectionPartition;
use ipas_interp::{Machine, RunConfig, RunStatus};
use ipas_ir::{FuncId, InstId};

use crate::{
    draw_plans, lock_ignoring_poison, profile_sites, CampaignConfig, CampaignError,
    CampaignJournal, CampaignOptions, CampaignResult, CompiledProgram, Engine, Injection,
    JournalHeader, PlanExecutor, PlanOutcome, ResumeState, SiteCount, Workload,
};

/// Runs the workload once cleanly and returns the run-length-encoded
/// eligible-result trace: `(func, inst, count)` runs whose counts sum
/// to [`Workload::eligible_results`]. Prefix-summing the counts maps
/// any global dynamic target back to its static site — the bridge from
/// a plan's dynamic index to a section.
///
/// # Errors
///
/// [`CampaignError::Run`] when the clean run fails (it completed during
/// workload preparation, so this indicates a changed module);
/// [`CampaignError::Composition`] when the trace disagrees with the
/// clean run's eligible-result count.
pub fn eligible_trace(workload: &Workload) -> Result<Vec<(FuncId, InstId, u64)>, CampaignError> {
    let mut machine = Machine::new(&workload.module);
    let out = machine
        .run(&RunConfig {
            entry: workload.entry.clone(),
            args: workload.args.clone(),
            trace_eligible: true,
            ..RunConfig::default()
        })
        .map_err(|e| CampaignError::Run {
            stage: "eligible tracing",
            message: e.to_string(),
        })?;
    if !matches!(out.status, RunStatus::Completed(_)) {
        return Err(CampaignError::Run {
            stage: "eligible tracing",
            message: format!("clean run did not complete: {:?}", out.status),
        });
    }
    let trace = out
        .eligible_trace
        .ok_or_else(|| CampaignError::Composition {
            message: "interpreter returned no eligible trace despite tracing being enabled".into(),
        })?;
    let total: u64 = trace.iter().map(|(_, _, n)| n).sum();
    if total != workload.eligible_results {
        return Err(CampaignError::Composition {
            message: format!(
                "eligible trace covers {total} results but the clean run reported {}",
                workload.eligible_results
            ),
        });
    }
    Ok(trace)
}

/// Maps every pre-drawn plan to the section containing its injection
/// site, returning one section id per plan (parallel to `plans`).
///
/// # Errors
///
/// [`CampaignError::UnsupportedSectional`] for non-value fault models
/// (their dynamic targets index load/store/branch streams, which the
/// eligible trace does not cover); [`CampaignError::Composition`] when
/// a target falls outside the trace or a site outside the partition.
pub fn assign_sections(
    workload: &Workload,
    partition: &SectionPartition,
    plans: &[Injection],
) -> Result<Vec<u32>, CampaignError> {
    if let Some(plan) = plans.iter().find(|p| !p.model.injects_values()) {
        return Err(CampaignError::UnsupportedSectional { model: plan.model });
    }
    // The trace is only needed (and only paid for) when some plan
    // targets a dynamic instance rather than a fixed site.
    let trace = if plans.iter().any(|p| p.site.is_none()) {
        eligible_trace(workload)?
    } else {
        Vec::new()
    };
    let mut prefix = Vec::with_capacity(trace.len());
    let mut cum = 0u64;
    for (_, _, n) in &trace {
        cum += n;
        prefix.push(cum);
    }
    plans
        .iter()
        .map(|plan| {
            let (fid, inst) = match plan.site {
                Some(site) => site,
                None => {
                    let idx = prefix.partition_point(|&c| c <= plan.target);
                    let (f, i, _) = *trace.get(idx).ok_or_else(|| CampaignError::Composition {
                        message: format!(
                            "dynamic target {} lies beyond the eligible trace",
                            plan.target
                        ),
                    })?;
                    (f, i)
                }
            };
            let sec =
                partition
                    .section_of(fid, inst)
                    .ok_or_else(|| CampaignError::Composition {
                        message: format!(
                            "injection site ({}, {}) is not in the section partition",
                            fid.index(),
                            inst.index()
                        ),
                    })?;
            Ok(sec as u32)
        })
        .collect()
}

/// Enumerates the static injection sites executed by the clean run,
/// grouped per section (the per-section view of
/// [`crate::profile_sites`]). Sections the clean run never enters are
/// empty.
///
/// # Errors
///
/// Same conditions as [`crate::profile_sites`], plus
/// [`CampaignError::Composition`] when an executed site is missing from
/// the partition.
pub fn section_sites(
    workload: &Workload,
    partition: &SectionPartition,
) -> Result<Vec<Vec<SiteCount>>, CampaignError> {
    let profile = profile_sites(workload)?;
    let mut per: Vec<Vec<SiteCount>> = vec![Vec::new(); partition.len()];
    for ((f, i), n) in profile {
        let sec = partition
            .section_of(f, i)
            .ok_or_else(|| CampaignError::Composition {
                message: format!(
                    "executed site ({}, {}) is not in the section partition",
                    f.index(),
                    i.index()
                ),
            })?;
        per[sec].push(((f, i), n));
    }
    Ok(per)
}

/// The outcomes of a (possibly partial) section-granular execution.
#[derive(Debug)]
pub struct SectionExecution {
    /// `(plan index, outcome)` for every plan of a selected section, in
    /// plan order.
    pub outcomes: Vec<(usize, PlanOutcome)>,
    /// Selected plans recovered from the checkpoint journal instead of
    /// being re-executed.
    pub resumed: usize,
    /// Selected plans actually (re-)executed by this invocation.
    pub executed: usize,
}

/// Executes the plans of every section whose `run_mask` entry is true,
/// with the full resilient runtime of [`crate::run_campaign_with`]
/// (panic isolation, retries, watchdog, journaling — records are
/// journaled with their section tag). Plans of unselected sections are
/// not touched; the caller splices their cached outcomes instead.
///
/// # Errors
///
/// [`CampaignError::Journal`] on checkpoint failures;
/// [`CampaignError::Incomplete`] when a selected plan ends up without
/// an outcome (an internal invariant violation).
pub fn execute_sections(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
    plans: &[Injection],
    assignment: &[u32],
    run_mask: &[bool],
) -> Result<SectionExecution, CampaignError> {
    assert_eq!(plans.len(), assignment.len(), "assignment is per plan");
    let selected: Vec<usize> = (0..plans.len())
        .filter(|&i| {
            run_mask
                .get(assignment[i] as usize)
                .copied()
                .unwrap_or(false)
        })
        .collect();

    let (journal, resume) = match &options.journal {
        Some(path) => {
            let header = JournalHeader {
                workload: workload.name.clone(),
                entry: workload.entry.clone(),
                seed: config.seed,
                runs: config.runs,
                sampling: options.sampling,
                fault_model: config.fault_model,
                eligible_results: workload.eligible_results,
                nominal_insts: workload.nominal_insts,
                round_runs: None,
            };
            let (journal, resume) = CampaignJournal::open(path, &header)?;
            (Some(journal), resume)
        }
        None => (None, ResumeState::default()),
    };

    let slots: Vec<Mutex<Option<PlanOutcome>>> =
        (0..plans.len()).map(|_| Mutex::new(None)).collect();
    let mut resumed = 0usize;
    for &i in &selected {
        if let Some(record) = resume.records.get(&i) {
            *lock_ignoring_poison(&slots[i]) = Some(PlanOutcome::Record(*record));
            resumed += 1;
        } else if let Some(failure) = resume.failures.get(&i) {
            *lock_ignoring_poison(&slots[i]) = Some(PlanOutcome::Failure(failure.clone()));
            resumed += 1;
        }
    }
    let pending: Vec<usize> = selected
        .iter()
        .copied()
        .filter(|i| lock_ignoring_poison(&slots[*i]).is_none())
        .collect();
    let executed = pending.len();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let journal_error: Mutex<Option<crate::JournalError>> = Mutex::new(None);
    let compiled = match config.engine {
        Engine::Compiled => Some(CompiledProgram::compile(&workload.module)),
        Engine::Reference => None,
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut executor =
                    PlanExecutor::new(workload, config.seed, options, compiled.as_ref());
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let i = pending[n];
                    let slot = executor.execute(i, plans[i]);
                    if let Some(journal) = &journal {
                        let written = match &slot {
                            PlanOutcome::Record(record) => {
                                journal.append_record_in_section(i, record, assignment[i])
                            }
                            PlanOutcome::Failure(failure) => journal.append_failure(failure),
                        };
                        if let Err(e) = written {
                            lock_ignoring_poison(&journal_error).get_or_insert(e);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    *lock_ignoring_poison(&slots[i]) = Some(slot);
                }
            });
        }
    });

    if let Some(e) = lock_ignoring_poison(&journal_error).take() {
        return Err(CampaignError::Journal(e));
    }

    let mut outcomes = Vec::with_capacity(selected.len());
    let mut missing = 0usize;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(outcome) => outcomes.push((i, outcome)),
            None => {
                if selected.binary_search(&i).is_ok() {
                    missing += 1;
                }
            }
        }
    }
    if missing > 0 {
        return Err(CampaignError::Incomplete { missing });
    }
    Ok(SectionExecution {
        outcomes,
        resumed,
        executed,
    })
}

/// Splices per-section outcome slices back into a whole-campaign
/// [`CampaignResult`]: every plan index in `0..runs` must appear
/// exactly once across `outcomes` (from any mix of fresh execution and
/// cached section profiles).
///
/// # Errors
///
/// [`CampaignError::Composition`] on an out-of-range or duplicate plan
/// index; [`CampaignError::Incomplete`] when plans are missing.
pub fn splice_outcomes(
    runs: usize,
    outcomes: impl IntoIterator<Item = (usize, PlanOutcome)>,
    resumed: usize,
    nominal_insts: u64,
) -> Result<CampaignResult, CampaignError> {
    let mut slots: Vec<Option<PlanOutcome>> = (0..runs).map(|_| None).collect();
    for (i, outcome) in outcomes {
        let slot = slots.get_mut(i).ok_or_else(|| CampaignError::Composition {
            message: format!("plan index {i} out of range for {runs} runs"),
        })?;
        if slot.is_some() {
            return Err(CampaignError::Composition {
                message: format!("plan index {i} was spliced twice"),
            });
        }
        *slot = Some(outcome);
    }
    let mut records = Vec::with_capacity(runs);
    let mut harness_failures = Vec::new();
    let mut missing = 0usize;
    for slot in slots {
        match slot {
            Some(PlanOutcome::Record(record)) => records.push(record),
            Some(PlanOutcome::Failure(failure)) => harness_failures.push(failure),
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(CampaignError::Incomplete { missing });
    }
    harness_failures.sort_by_key(|f| f.plan_index);
    Ok(CampaignResult {
        records,
        harness_failures,
        resumed,
        nominal_insts,
    })
}

/// A completed section-granular campaign: the partition it ran under,
/// the per-plan section assignment, and the spliced whole-campaign
/// result (byte-identical to the monolithic [`crate::run_campaign_with`]
/// for the same inputs).
#[derive(Debug)]
pub struct SectionalCampaign {
    /// The module's section partition.
    pub partition: SectionPartition,
    /// Section id of each plan, parallel to the campaign's plan list.
    pub assignment: Vec<u32>,
    /// The spliced campaign result.
    pub result: CampaignResult,
}

impl SectionalCampaign {
    /// Number of plans assigned to section `sec`.
    pub fn plans_in_section(&self, sec: u32) -> usize {
        self.assignment.iter().filter(|&&s| s == sec).count()
    }
}

/// Runs a campaign section by section: partition, draw the classic
/// plan list, assign plans to sections, execute every section, splice.
///
/// # Errors
///
/// The union of [`crate::draw_plans`], [`assign_sections`],
/// [`execute_sections`], and [`splice_outcomes`] errors.
pub fn run_campaign_sectional(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
) -> Result<SectionalCampaign, CampaignError> {
    let partition = SectionPartition::compute(&workload.module);
    let plans = draw_plans(workload, config, options.sampling)?;
    let assignment = assign_sections(workload, &partition, &plans)?;
    let mask = vec![true; partition.len()];
    let exec = execute_sections(workload, config, options, &plans, &assignment, &mask)?;
    let result = splice_outcomes(
        plans.len(),
        exec.outcomes,
        exec.resumed,
        workload.nominal_insts,
    )?;
    Ok(SectionalCampaign {
        partition,
        assignment,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign_with, FaultModel, GoldenToleranceVerifier, SamplingMode};

    const TWO_FN_SRC: &str = "fn sum_sq(n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i = i + 1) { s = s + i * i; }
        return s;
    }
    fn main() -> int {
        let a: int = sum_sq(9);
        output_i(a);
        let b: int = 0;
        for (let j: int = 0; j < 7; j = j + 1) { b = b + j * 3; }
        output_i(b);
        return 0;
    }";

    fn workload() -> Workload {
        let module = ipas_lang::compile(TWO_FN_SRC).expect("compiles");
        Workload::serial("two-fn", module, GoldenToleranceVerifier::EXACT).expect("prepares")
    }

    #[test]
    fn trace_counts_cover_the_eligible_space() {
        let w = workload();
        let trace = eligible_trace(&w).expect("trace");
        let total: u64 = trace.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, w.eligible_results);
        // Maximal RLE: no two adjacent runs share a site.
        for pair in trace.windows(2) {
            assert!(
                (pair[0].0, pair[0].1) != (pair[1].0, pair[1].1),
                "adjacent runs share a site"
            );
        }
    }

    #[test]
    fn sectional_matches_monolithic_campaign() {
        let w = workload();
        let config = CampaignConfig {
            runs: 48,
            seed: 11,
            threads: 2,
            ..CampaignConfig::default()
        };
        let options = CampaignOptions::default();
        let classic = run_campaign_with(&w, &config, &options).expect("classic");
        let sectional = run_campaign_sectional(&w, &config, &options).expect("sectional");
        assert!(sectional.partition.len() >= 3, "two functions with loops");
        assert_eq!(sectional.result.records, classic.records);
        assert_eq!(sectional.result.harness_failures, classic.harness_failures);
        let covered: usize = (0..sectional.partition.len() as u32)
            .map(|s| sectional.plans_in_section(s))
            .sum();
        assert_eq!(covered, config.runs, "every plan has a section");
    }

    #[test]
    fn static_site_plans_map_without_a_trace() {
        let w = workload();
        let config = CampaignConfig {
            runs: 24,
            seed: 5,
            threads: 1,
            ..CampaignConfig::default()
        };
        let options = CampaignOptions {
            sampling: SamplingMode::StaticUniform,
            ..CampaignOptions::default()
        };
        let classic = run_campaign_with(&w, &config, &options).expect("classic");
        let sectional = run_campaign_sectional(&w, &config, &options).expect("sectional");
        assert_eq!(sectional.result.records, classic.records);
    }

    #[test]
    fn masked_execution_runs_only_selected_sections() {
        let w = workload();
        let config = CampaignConfig {
            runs: 32,
            seed: 3,
            threads: 1,
            ..CampaignConfig::default()
        };
        let options = CampaignOptions::default();
        let partition = SectionPartition::compute(&w.module);
        let plans = draw_plans(&w, &config, options.sampling).expect("plans");
        let assignment = assign_sections(&w, &partition, &plans).expect("assign");
        let chosen = assignment[0];
        let mut mask = vec![false; partition.len()];
        mask[chosen as usize] = true;
        let exec =
            execute_sections(&w, &config, &options, &plans, &assignment, &mask).expect("exec");
        let expected = assignment.iter().filter(|&&s| s == chosen).count();
        assert_eq!(exec.executed, expected);
        assert_eq!(exec.outcomes.len(), expected);
        assert!(exec.outcomes.iter().all(|(i, _)| assignment[*i] == chosen));
        // Splicing a partial execution is an explicit incompleteness.
        match splice_outcomes(plans.len(), exec.outcomes, 0, w.nominal_insts) {
            Err(CampaignError::Incomplete { missing }) => {
                assert_eq!(missing, plans.len() - expected);
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn non_value_models_are_rejected() {
        let w = workload();
        let partition = SectionPartition::compute(&w.module);
        let plans = vec![Injection::for_model(FaultModel::BranchFlip, 0, 0)];
        match assign_sections(&w, &partition, &plans) {
            Err(CampaignError::UnsupportedSectional { model }) => {
                assert_eq!(model, FaultModel::BranchFlip);
            }
            other => panic!("expected UnsupportedSectional, got {other:?}"),
        }
    }
}

//! Round-granular campaign execution for adaptive (active-learning)
//! campaigns.
//!
//! An adaptive campaign does not pre-draw its whole plan list: it draws
//! one *round* at a time, because the distribution of round `k+1`
//! depends on the labels of rounds `0..=k` (the margin-weighted site
//! distribution of `ipas-core`'s adaptive driver). This module supplies
//! the two pieces that stay below the training loop:
//!
//! * [`draw_uniform_site_plans`] / [`draw_weighted_site_plans`] — one
//!   round's plans from an *externally owned* RNG, so every draw of the
//!   campaign still flows from the single seeded plan RNG and the whole
//!   campaign stays a pure function of `(workload, config, params)`;
//! * [`execute_round`] — run one round's plans with the full resilient
//!   runtime, resume-filling from the journal at *global* plan indices
//!   and checkpointing all fresh outcomes of the round in one ordered
//!   write tagged with the round id.
//!
//! Determinism contract: the weighted draw rejects degenerate weights
//! *before* consuming any randomness ([`UniformFallback`]), so the
//! caller's uniform fallback draws from the identical RNG state — a
//! resumed campaign that recomputes the same weights takes the same
//! branch and draws the same plans. The journal write is one ordered
//! buffer per round, so the journal bytes are independent of thread
//! count and a crash can only tear the final line.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::Rng;

use crate::{
    lock_ignoring_poison, CampaignConfig, CampaignError, CampaignJournal, CampaignOptions,
    CompiledProgram, FaultModel, Injection, PlanExecutor, PlanOutcome, ResumeState, SiteCount,
    Workload,
};

/// Why an adaptive round degraded to uniform site sampling instead of
/// the margin-weighted distribution. Falling back is not an error — a
/// uniform round is always sound — but the reason is surfaced so round
/// summaries can report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniformFallback {
    /// The labels collected so far are all one class, so no classifier
    /// can be trained (the all-benign early-round case).
    SingleClassLabels,
    /// The quick grid search produced no usable model.
    NoModel,
    /// The margin weights were degenerate: non-finite, negative, or
    /// summing to zero.
    DegenerateWeights,
}

impl UniformFallback {
    /// Short label for round summaries.
    pub fn label(self) -> &'static str {
        match self {
            UniformFallback::SingleClassLabels => "single-class labels",
            UniformFallback::NoModel => "no model",
            UniformFallback::DegenerateWeights => "degenerate weights",
        }
    }
}

impl fmt::Display for UniformFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Draws one round of plans uniformly over the profiled static sites —
/// the same per-plan draw shape as [`crate::draw_plans`] under
/// [`crate::SamplingMode::StaticUniform`] (site, dynamic instance, bit),
/// but from a caller-owned RNG so rounds chain off one seeded stream.
pub fn draw_uniform_site_plans(
    profile: &[SiteCount],
    model: FaultModel,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<Injection> {
    let domain = model.bit_domain();
    (0..count)
        .map(|_| {
            let (site, executions) = profile[rng.gen_range(0..profile.len())];
            Injection {
                target: rng.gen_range(0..executions),
                bit: rng.gen_range(0..domain),
                site: Some(site),
                model,
            }
        })
        .collect()
}

/// Draws one round of plans with per-site probability proportional to
/// `weights` (parallel to `profile`), then uniform over the chosen
/// site's dynamic instances and the model's bit domain.
///
/// # Errors
///
/// [`UniformFallback::DegenerateWeights`] when the weights cannot form
/// a distribution (wrong length, non-finite or negative entries, zero
/// sum). The check runs *before any RNG draw*, so on `Err` the RNG
/// state is untouched and the caller's uniform fallback is
/// deterministic.
pub fn draw_weighted_site_plans(
    profile: &[SiteCount],
    weights: &[f64],
    model: FaultModel,
    count: usize,
    rng: &mut impl Rng,
) -> Result<Vec<Injection>, UniformFallback> {
    if weights.len() != profile.len() || weights.is_empty() {
        return Err(UniformFallback::DegenerateWeights);
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(UniformFallback::DegenerateWeights);
    }
    let total: f64 = weights.iter().sum();
    if !total.is_finite() || total <= 0.0 {
        return Err(UniformFallback::DegenerateWeights);
    }
    let domain = model.bit_domain();
    Ok((0..count)
        .map(|_| {
            // Inverse-CDF by cumulative scan: one f64 draw per plan,
            // deterministic for a given RNG state.
            let mut point = rng.gen_range(0.0..total);
            let mut chosen = profile.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if point < *w {
                    chosen = i;
                    break;
                }
                point -= *w;
            }
            let (site, executions) = profile[chosen];
            Injection {
                target: rng.gen_range(0..executions),
                bit: rng.gen_range(0..domain),
                site: Some(site),
                model,
            }
        })
        .collect())
}

/// The outcomes of one executed adaptive round.
#[derive(Debug)]
pub struct RoundExecution {
    /// `(global plan index, outcome)` for every plan of the round, in
    /// plan order.
    pub outcomes: Vec<(usize, PlanOutcome)>,
    /// Plans of this round recovered from the journal instead of being
    /// re-executed.
    pub resumed: usize,
    /// Plans actually executed by this invocation.
    pub executed: usize,
}

/// Executes one round's plans (global indices `base..base + plans.len()`)
/// with the resilient runtime of [`crate::run_campaign_with`]: panic
/// isolation, deterministic retries, the wall-clock watchdog, and
/// work-shared threads.
///
/// Plans already present in `resume` (journaled by a previous
/// invocation) are filled without re-execution. All *fresh* outcomes
/// are checkpointed in one ordered write tagged with `round`, so the
/// journal bytes are identical for any thread count and a kill
/// mid-round can only tear the final line — the torn-tail shape resume
/// already tolerates.
///
/// # Errors
///
/// [`CampaignError::Journal`] when the checkpoint write fails;
/// [`CampaignError::Incomplete`] when a plan ends up without an outcome
/// (an internal invariant violation).
#[allow(clippy::too_many_arguments)]
pub fn execute_round(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
    compiled: Option<&CompiledProgram>,
    journal: Option<&CampaignJournal>,
    resume: &ResumeState,
    base: usize,
    round: u32,
    plans: &[Injection],
) -> Result<RoundExecution, CampaignError> {
    let slots: Vec<Mutex<Option<PlanOutcome>>> =
        (0..plans.len()).map(|_| Mutex::new(None)).collect();
    let mut resumed = 0usize;
    for (j, slot) in slots.iter().enumerate() {
        let i = base + j;
        if let Some(record) = resume.records.get(&i) {
            *lock_ignoring_poison(slot) = Some(PlanOutcome::Record(*record));
            resumed += 1;
        } else if let Some(failure) = resume.failures.get(&i) {
            *lock_ignoring_poison(slot) = Some(PlanOutcome::Failure(failure.clone()));
            resumed += 1;
        }
    }
    let pending: Vec<usize> = (0..plans.len())
        .filter(|j| lock_ignoring_poison(&slots[*j]).is_none())
        .collect();
    let executed = pending.len();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut executor = PlanExecutor::new(workload, config.seed, options, compiled);
                loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let j = pending[n];
                    let slot = executor.execute(base + j, plans[j]);
                    *lock_ignoring_poison(&slots[j]) = Some(slot);
                }
            });
        }
    });

    let mut outcomes = Vec::with_capacity(plans.len());
    let mut fresh = Vec::with_capacity(executed);
    let mut missing = 0usize;
    for (j, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(outcome) => {
                if !resume.contains(base + j) {
                    fresh.push((base + j, outcome.clone()));
                }
                outcomes.push((base + j, outcome));
            }
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(CampaignError::Incomplete { missing });
    }
    if let Some(journal) = journal {
        journal.append_outcomes_in_section(&fresh, Some(round))?;
    }
    Ok(RoundExecution {
        outcomes,
        resumed,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profile_sites, GoldenToleranceVerifier, JournalHeader, SamplingMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "fn main() -> int {
        let s: int = 0;
        for (let i: int = 0; i < 24; i = i + 1) { s = s + i * i; }
        output_i(s);
        return 0;
    }";

    fn workload() -> Workload {
        let module = ipas_lang::compile(SRC).expect("compiles");
        Workload::serial("rounds", module, GoldenToleranceVerifier::EXACT).expect("prepares")
    }

    #[test]
    fn degenerate_weights_fail_before_consuming_randomness() {
        let w = workload();
        let profile = profile_sites(&w).expect("profile");
        let model = FaultModel::SingleBit;
        for bad in [
            vec![0.0; profile.len()],
            vec![f64::NAN; profile.len()],
            vec![-1.0; profile.len()],
            vec![],
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let err = draw_weighted_site_plans(&profile, &bad, model, 8, &mut rng)
                .expect_err("degenerate");
            assert_eq!(err, UniformFallback::DegenerateWeights);
            // The RNG was untouched: a uniform draw from it matches a
            // uniform draw from a fresh RNG with the same seed.
            let fallback = draw_uniform_site_plans(&profile, model, 8, &mut rng);
            let mut fresh = StdRng::seed_from_u64(9);
            let direct = draw_uniform_site_plans(&profile, model, 8, &mut fresh);
            assert_eq!(fallback, direct);
        }
    }

    #[test]
    fn weighted_draw_concentrates_on_heavy_sites() {
        let w = workload();
        let profile = profile_sites(&w).expect("profile");
        assert!(profile.len() >= 2, "need several sites");
        let mut weights = vec![0.0; profile.len()];
        weights[1] = 3.5;
        let mut rng = StdRng::seed_from_u64(3);
        let plans =
            draw_weighted_site_plans(&profile, &weights, FaultModel::SingleBit, 32, &mut rng)
                .expect("valid weights");
        assert_eq!(plans.len(), 32);
        for plan in &plans {
            assert_eq!(plan.site, Some(profile[1].0), "all mass on site 1");
            assert!(plan.target < profile[1].1);
        }
    }

    #[test]
    fn round_execution_is_thread_invariant_and_resumable() {
        let w = workload();
        let profile = profile_sites(&w).expect("profile");
        let mut rng = StdRng::seed_from_u64(5);
        let plans = draw_uniform_site_plans(&profile, FaultModel::SingleBit, 12, &mut rng);
        let options = CampaignOptions::default();
        let base = 12; // pretend this is round 1 of a 12-plan round size
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let config = CampaignConfig {
                runs: 24,
                seed: 5,
                threads,
                ..CampaignConfig::default()
            };
            let exec = execute_round(
                &w,
                &config,
                &options,
                None,
                None,
                &ResumeState::default(),
                base,
                1,
                &plans,
            )
            .expect("round");
            assert_eq!(exec.executed, 12);
            assert_eq!(exec.resumed, 0);
            assert_eq!(exec.outcomes.len(), 12);
            assert!(exec.outcomes.iter().map(|(i, _)| *i).eq(base..base + 12));
            results.push(exec.outcomes);
        }
        assert_eq!(results[0], results[1], "thread count is invisible");

        // Journaled outcomes resume at global indices with round tags.
        let dir = std::env::temp_dir().join("ipas-rounds-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!(
            "resume-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let header = JournalHeader {
            workload: w.name.clone(),
            entry: w.entry.clone(),
            seed: 5,
            runs: 24,
            sampling: SamplingMode::StaticUniform,
            fault_model: FaultModel::SingleBit,
            eligible_results: w.eligible_results,
            nominal_insts: w.nominal_insts,
            round_runs: Some(12),
        };
        let config = CampaignConfig {
            runs: 24,
            seed: 5,
            threads: 1,
            ..CampaignConfig::default()
        };
        {
            let (journal, resume) = CampaignJournal::open(&path, &header).expect("fresh");
            let exec = execute_round(
                &w,
                &config,
                &options,
                None,
                Some(&journal),
                &resume,
                base,
                1,
                &plans,
            )
            .expect("journaled round");
            assert_eq!(exec.executed, 12);
        }
        let (journal, resume) = CampaignJournal::open(&path, &header).expect("reopen");
        assert_eq!(resume.len(), 12);
        assert!(resume.sections.values().all(|&s| s == 1), "round tags");
        let exec = execute_round(
            &w,
            &config,
            &options,
            None,
            Some(&journal),
            &resume,
            base,
            1,
            &plans,
        )
        .expect("resumed round");
        assert_eq!(exec.executed, 0, "everything resumes");
        assert_eq!(exec.resumed, 12);
        assert_eq!(exec.outcomes, results[0]);
        std::fs::remove_file(&path).expect("cleanup");
    }
}

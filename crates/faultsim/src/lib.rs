//! Statistical fault injection (the reproduction's FlipIt).
//!
//! The paper uses FlipIt (Calhoun et al.) to inject single-bit flips into
//! random LLVM instruction instances and classifies each run into the
//! four outcome categories of §5.5: observable symptom, detected by
//! duplication, masked, and silent output corruption (SOC). This crate
//! drives those campaigns against the `ipas-interp` virtual machine:
//!
//! * [`Workload`] — a module plus entry point, arguments, and an
//!   [`OutputVerifier`] that decides whether a completed run's output is
//!   acceptable (the user-provided verification routine of step 1);
//! * [`run_campaign`] — N injection runs at uniformly random dynamic
//!   instruction instances and bits, in parallel across threads, each
//!   classified into an [`Outcome`];
//! * [`CampaignResult`] — per-outcome counts, fractions, the margin of
//!   error of §6.2, and the per-injection records used to build SVM
//!   training sets.
//!
//! # Campaign resilience
//!
//! Campaigns are long (thousands of interpreter runs), so the runtime is
//! built to survive its own failures:
//!
//! * every run executes under [`std::panic::catch_unwind`], so a panic in
//!   the interpreter or in a user [`OutputVerifier`] poisons one record,
//!   not the campaign;
//! * failed runs are retried up to [`RetryPolicy::max_attempts`] times
//!   with deterministic, jittered exponential backoff, then degrade to a
//!   [`HarnessFailure`] — reported separately and excluded from the §5.5
//!   outcome fractions;
//! * with [`CampaignOptions::journal`] set, each record is atomically
//!   appended to a JSONL [`CampaignJournal`]; re-running a killed
//!   campaign resumes from the journal, skipping completed plan indices
//!   while preserving seed-determinism across thread counts;
//! * [`CampaignOptions::run_deadline`] arms a wall-clock watchdog in the
//!   interpreter, classifying runaway runs as hangs even when the
//!   instruction budget cannot catch them.
//!
//! # Example
//!
//! ```
//! use ipas_faultsim::{run_campaign, CampaignConfig, GoldenToleranceVerifier, Workload};
//!
//! let module = ipas_lang::compile(
//!     "fn main() -> int { let s: int = 0;
//!        for (let i: int = 0; i < 50; i = i + 1) { s = s + i * i; }
//!        output_i(s); return 0; }",
//! ).unwrap();
//! let workload = Workload::serial("sum", module, GoldenToleranceVerifier::EXACT).unwrap();
//! let config = CampaignConfig { runs: 40, seed: 7, threads: 2, ..CampaignConfig::default() };
//! let result = run_campaign(&workload, &config).expect("campaign completes");
//! assert_eq!(result.records.len(), 40);
//! assert!(result.fraction(ipas_faultsim::Outcome::Soc) <= 1.0);
//! ```
//!
//! # Execution engines
//!
//! [`CampaignConfig::engine`] selects the interpreter:
//! [`Engine::Compiled`] (default) lowers the module once per campaign
//! and runs it on pre-decoded machines reused per worker thread;
//! [`Engine::Reference`] tree-walks the IR directly. The two are
//! bit-identical — same seed, same records, byte for byte — so the knob
//! only trades throughput, never results (see `docs/interpreter.md`).

#![warn(missing_docs)]

mod journal;
pub mod rounds;
pub mod sections;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ipas_interp::{Machine, OutputStream, RtVal, RunConfig, RunError, RunOutput, RunStatus};
use ipas_ir::{FuncId, InstId, Module};
use rand::{Rng, SeedableRng};

pub use ipas_interp::{CompiledMachine, CompiledProgram, Engine, FaultModel, Injection, SiteClass};
pub use journal::{
    outcome_line, outcome_line_in_section, CampaignJournal, JournalError, JournalHeader,
    ResumeState,
};

/// The four §5.5 outcome categories of one fault-injection run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Crash, hang, or abort — recoverable by checkpoint/restart.
    Symptom,
    /// Caught by an inserted `__ipas_check_*` comparison.
    Detected,
    /// Run completed and the verification routine accepted the output.
    Masked,
    /// Run completed but the output is corrupted: silent output
    /// corruption.
    Soc,
}

impl Outcome {
    /// All outcomes, in reporting order.
    pub const ALL: [Outcome; 4] = [
        Outcome::Symptom,
        Outcome::Detected,
        Outcome::Masked,
        Outcome::Soc,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Symptom => "symptom",
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::Soc => "SOC",
        }
    }

    /// Stable wire token, shared by the campaign journal and the stored
    /// section-profile artifacts (all-lowercase, unlike
    /// [`Outcome::label`]'s display form).
    pub fn wire(self) -> &'static str {
        match self {
            Outcome::Symptom => "symptom",
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::Soc => "soc",
        }
    }

    /// Parses a [`Outcome::wire`] token.
    pub fn from_wire(token: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.wire() == token)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Decides whether a completed faulty run's output is acceptable.
///
/// Implementations embed whatever golden data they need (reference
/// outputs, tolerances, conservation laws). They must be cheap: they run
/// once per injection. A panicking verifier does not abort the campaign:
/// the affected run degrades to a [`HarnessFailure`] after the retry
/// budget is exhausted.
pub trait OutputVerifier: Sync + Send {
    /// Returns `true` when the output is acceptable (fault masked).
    fn verify(&self, run: &RunOutput) -> bool;

    /// Human-readable description for reports.
    fn describe(&self) -> String {
        "unspecified verification routine".to_string()
    }
}

/// A verifier comparing the faulty output stream against a golden run:
/// integer items must match exactly; float items must match within an
/// absolute-or-relative tolerance; a different item count is SOC.
#[derive(Debug, Clone)]
pub struct GoldenToleranceVerifier {
    golden_ints: Vec<i64>,
    golden_floats: Vec<f64>,
    tolerance: f64,
}

impl GoldenToleranceVerifier {
    /// Tolerance used by [`Workload::serial`]'s `EXACT` marker: floats
    /// must match to 1e-9 relative.
    pub const EXACT: f64 = 1e-9;

    /// Builds a verifier from a golden output stream.
    pub fn new(golden: &OutputStream, tolerance: f64) -> Self {
        GoldenToleranceVerifier {
            golden_ints: golden.as_ints(),
            golden_floats: golden.as_floats(),
            tolerance,
        }
    }
}

impl OutputVerifier for GoldenToleranceVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let ints = run.outputs.as_ints();
        if ints != self.golden_ints {
            return false;
        }
        let floats = run.outputs.as_floats();
        if floats.len() != self.golden_floats.len() {
            return false;
        }
        floats.iter().zip(&self.golden_floats).all(|(a, g)| {
            let scale = g.abs().max(1.0);
            (a - g).abs() <= self.tolerance * scale && a.is_finite()
        })
    }

    fn describe(&self) -> String {
        format!(
            "golden comparison, {} ints exact, {} floats within {:.0e}",
            self.golden_ints.len(),
            self.golden_floats.len(),
            self.tolerance
        )
    }
}

/// Error preparing a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The golden (clean) run did not complete.
    GoldenRunFailed(String),
    /// The module has no eligible fault-injection sites.
    NoEligibleSites,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::GoldenRunFailed(s) => write!(f, "golden run failed: {s}"),
            WorkloadError::NoEligibleSites => write!(f, "no eligible fault-injection sites"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A module prepared for fault-injection campaigns: its golden run
/// statistics, entry configuration, and verification routine.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The (possibly protected) module under test.
    pub module: Module,
    /// Entry function name.
    pub entry: String,
    /// Entry arguments.
    pub args: Vec<RtVal>,
    /// The verification routine (shared with protected variants).
    pub verifier: std::sync::Arc<dyn OutputVerifier>,
    /// Dynamic instruction count of the clean run.
    pub nominal_insts: u64,
    /// Eligible (injectable) dynamic results in the clean run.
    pub eligible_results: u64,
    /// `load` executions in the clean run (the
    /// [`FaultModel::LoadValue`] sample space).
    pub loads: u64,
    /// `store` executions in the clean run (the
    /// [`FaultModel::StoreValue`] sample space).
    pub stores: u64,
    /// Conditional-branch decisions in the clean run (the
    /// [`FaultModel::BranchFlip`] sample space).
    pub cond_branches: u64,
    /// Golden outputs of the clean run.
    pub golden: OutputStream,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("entry", &self.entry)
            .field("nominal_insts", &self.nominal_insts)
            .field("eligible_results", &self.eligible_results)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Prepares a workload whose verifier is a golden-output comparison
    /// with float tolerance `tolerance` (use
    /// [`GoldenToleranceVerifier::EXACT`] for exact results). The golden
    /// run uses `main()` with no arguments.
    ///
    /// # Errors
    ///
    /// Fails when the clean run traps/hangs or there is nothing to
    /// inject into.
    pub fn serial(name: &str, module: Module, tolerance: f64) -> Result<Self, WorkloadError> {
        let golden = golden_run(&module, "main", &[])?;
        let verifier =
            std::sync::Arc::new(GoldenToleranceVerifier::new(&golden.outputs, tolerance));
        Self::with_verifier(name, module, "main", Vec::new(), verifier, golden)
    }

    /// Prepares a workload with a custom verifier built by `make` from
    /// the golden run (for conservation-law style checks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Workload::serial`].
    pub fn with_custom_verifier(
        name: &str,
        module: Module,
        entry: &str,
        args: Vec<RtVal>,
        make: impl FnOnce(&RunOutput) -> Box<dyn OutputVerifier>,
    ) -> Result<Self, WorkloadError> {
        let golden = golden_run(&module, entry, &args)?;
        let verifier = std::sync::Arc::from(make(&golden));
        Self::with_verifier(name, module, entry, args, verifier, golden)
    }

    fn with_verifier(
        name: &str,
        module: Module,
        entry: &str,
        args: Vec<RtVal>,
        verifier: std::sync::Arc<dyn OutputVerifier>,
        golden: RunOutput,
    ) -> Result<Self, WorkloadError> {
        if golden.eligible_results == 0 {
            return Err(WorkloadError::NoEligibleSites);
        }
        Ok(Workload {
            name: name.to_string(),
            module,
            entry: entry.to_string(),
            args,
            verifier,
            nominal_insts: golden.dynamic_insts,
            eligible_results: golden.eligible_results,
            loads: golden.loads,
            stores: golden.stores,
            cond_branches: golden.cond_branches,
            golden: golden.outputs,
        })
    }

    /// Size of the clean run's dynamic sample space for one site class.
    pub fn dynamic_sites(&self, class: SiteClass) -> u64 {
        match class {
            SiteClass::Value => self.eligible_results,
            SiteClass::Load => self.loads,
            SiteClass::Store => self.stores,
            SiteClass::Branch => self.cond_branches,
        }
    }

    /// Re-prepares this workload around a transformed (protected) module,
    /// re-running the golden run but keeping the same verifier.
    ///
    /// # Errors
    ///
    /// Fails when the transformed module's clean run fails — which would
    /// indicate a broken protection pass.
    pub fn with_module(&self, name: &str, module: Module) -> Result<Workload, WorkloadError> {
        let golden = golden_run(&module, &self.entry, &self.args)?;
        if golden.eligible_results == 0 {
            return Err(WorkloadError::NoEligibleSites);
        }
        Ok(Workload {
            name: name.to_string(),
            module,
            entry: self.entry.clone(),
            args: self.args.clone(),
            verifier: std::sync::Arc::clone(&self.verifier),
            nominal_insts: golden.dynamic_insts,
            eligible_results: golden.eligible_results,
            loads: golden.loads,
            stores: golden.stores,
            cond_branches: golden.cond_branches,
            golden: golden.outputs,
        })
    }
}

fn golden_run(module: &Module, entry: &str, args: &[RtVal]) -> Result<RunOutput, WorkloadError> {
    let mut machine = Machine::new(module);
    let out = machine
        .run(&RunConfig {
            entry: entry.to_string(),
            args: args.to_vec(),
            ..RunConfig::default()
        })
        .map_err(|e| WorkloadError::GoldenRunFailed(e.to_string()))?;
    match out.status {
        RunStatus::Completed(_) => Ok(out),
        other => Err(WorkloadError::GoldenRunFailed(format!("{other:?}"))),
    }
}

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Number of injection runs (the paper uses 1,024 per configuration
    /// for evaluation and 2,500 for training).
    pub runs: usize,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Which interpreter engine executes the runs. Both engines are
    /// bit-identical (same records for the same seed), so this is a
    /// pure throughput knob; the pre-decoded engine is the default.
    pub engine: Engine,
    /// The fault being modeled by every plan of the campaign. The
    /// default, [`FaultModel::SingleBit`], reproduces the paper's
    /// protocol bit-for-bit: a single-bit campaign draws the identical
    /// plan sequence (and therefore records) it drew before the model
    /// knob existed.
    pub fault_model: FaultModel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 256,
            seed: 0,
            threads: 0,
            engine: Engine::default(),
            fault_model: FaultModel::default(),
        }
    }
}

/// Retry schedule for runs that fail for harness reasons (an interpreter
/// or verifier panic, or an invalid run). The backoff before attempt
/// `k+1` is `base_backoff · 2^(k-1)` capped at `max_backoff`, scaled by
/// a deterministic jitter in `[0.5, 1.0]` derived from the campaign
/// seed, plan index, and attempt — so retry timing never perturbs
/// campaign determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per plan before degrading to a
    /// [`HarnessFailure`] (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (each plan gets exactly one attempt).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// One plan that exhausted its retry budget without producing a
/// classifiable run. Harness failures are campaign-infrastructure
/// problems, not fault outcomes: they are excluded from the §5.5
/// fractions and reported separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessFailure {
    /// Index of the plan in the campaign's pre-drawn plan list.
    pub plan_index: usize,
    /// The dynamic eligible-result index that was targeted.
    pub target: u64,
    /// The bit that was to be flipped.
    pub bit: u32,
    /// Attempts consumed (equals the policy's `max_attempts`).
    pub attempts: u32,
    /// The last attempt's error (panic message or run error).
    pub error: String,
}

impl fmt::Display for HarnessFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan {} (target {}, bit {}) failed after {} attempts: {}",
            self.plan_index, self.target, self.bit, self.attempts, self.error
        )
    }
}

/// Knobs of the resilient campaign runtime, beyond the basic
/// [`CampaignConfig`].
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// How injection sites are drawn.
    pub sampling: SamplingMode,
    /// Retry schedule for harness failures.
    pub retry: RetryPolicy,
    /// Checkpoint journal path. When set, every classified record is
    /// appended (and flushed) to this JSONL file, and a re-invocation
    /// resumes from it, re-executing only missing plan indices.
    pub journal: Option<PathBuf>,
    /// Wall-clock watchdog per run, classified as a hang
    /// ([`Outcome::Symptom`]) like the instruction budget.
    pub run_deadline: Option<Duration>,
}

/// Error running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// The interpreter rejected the run configuration (bad entry name or
    /// argument types) during `stage`.
    Run {
        /// What the campaign was doing.
        stage: &'static str,
        /// The interpreter's message.
        message: String,
    },
    /// Site profiling was requested but the interpreter returned no
    /// profile.
    MissingProfile,
    /// The checkpoint journal failed (I/O, identity mismatch, or
    /// corruption).
    Journal(JournalError),
    /// Internal invariant violation: some plan indices were left
    /// unprocessed.
    Incomplete {
        /// Number of plan indices without a record or failure.
        missing: usize,
    },
    /// The clean run never exercised the selected fault model's site
    /// class, so there is nothing to sample.
    NoDynamicSites {
        /// The model whose sample space is empty.
        model: FaultModel,
    },
    /// Static-site-uniform sampling enumerates value-producing
    /// instructions, which only value-class models can target.
    UnsupportedSampling {
        /// The non-value model that was combined with
        /// [`SamplingMode::StaticUniform`].
        model: FaultModel,
    },
    /// Section-granular campaigns resolve dynamic targets through the
    /// eligible-result trace, which only value-class models sample.
    UnsupportedSectional {
        /// The non-value model requested for a sectional campaign.
        model: FaultModel,
    },
    /// A compositional invariant was violated: the eligible trace, the
    /// section partition, and the plan list disagreed (e.g. a target
    /// beyond the trace, a site outside the partition, or a plan index
    /// spliced twice).
    Composition {
        /// What disagreed.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Run { stage, message } => {
                write!(f, "campaign {stage} failed: {message}")
            }
            CampaignError::MissingProfile => {
                f.write_str("interpreter returned no site profile despite profiling being enabled")
            }
            CampaignError::Journal(e) => write!(f, "campaign journal failed: {e}"),
            CampaignError::Incomplete { missing } => {
                write!(f, "campaign left {missing} plan indices unprocessed")
            }
            CampaignError::NoDynamicSites { model } => write!(
                f,
                "fault model {model} has no sites to sample: the clean run executed no {}",
                model.site_class().label()
            ),
            CampaignError::UnsupportedSampling { model } => write!(
                f,
                "static-site sampling only supports value-class fault models, not {model}"
            ),
            CampaignError::UnsupportedSectional { model } => write!(
                f,
                "section-granular campaigns only support value-class fault models, not {model}"
            ),
            CampaignError::Composition { message } => {
                write!(f, "campaign composition failed: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// One injection run's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// The fault model the plan applied.
    pub model: FaultModel,
    /// The static instruction whose dynamic instance was corrupted.
    pub site: (FuncId, InstId),
    /// The dynamic index targeted within the model's site class.
    pub target: u64,
    /// The model's corruption parameter (bit line, burst origin, stuck
    /// line+polarity; unused by branch flips).
    pub bit: u32,
    /// The classified outcome.
    pub outcome: Outcome,
    /// Dynamic instructions executed by the faulty run.
    pub dynamic_insts: u64,
    /// Dynamic instructions between the injection and the end of the
    /// run. For [`Outcome::Detected`] this is the detection latency of
    /// the inserted checks; for [`Outcome::Soc`] it is the latency a
    /// verification-only scheme would pay (the whole remaining run),
    /// which is the paper's §2.2 comparison.
    pub latency: u64,
    /// Attempts the run took to classify (1 unless earlier attempts hit
    /// harness failures and were retried).
    pub attempts: u32,
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-run records (site, bit, outcome), in plan order.
    pub records: Vec<InjectionRecord>,
    /// Plans that exhausted their retry budget, in plan order. Excluded
    /// from [`CampaignResult::fraction`]; a non-empty list means the
    /// outcome fractions rest on fewer samples than configured.
    pub harness_failures: Vec<HarnessFailure>,
    /// Entries recovered from the checkpoint journal instead of being
    /// re-executed (0 without a journal or on a fresh campaign).
    pub resumed: usize,
    /// Nominal (clean) dynamic instruction count of the workload.
    pub nominal_insts: u64,
}

impl CampaignResult {
    /// Number of runs with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Fraction of classified runs with the given outcome (harness
    /// failures are excluded from the denominator).
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.count(outcome) as f64 / self.records.len() as f64
        }
    }

    /// The 95% margin of error of the SOC fraction (§6.2): the binomial
    /// normal-approximation half-width `1.96·√(p(1−p)/n)`.
    pub fn soc_margin_of_error(&self) -> f64 {
        margin_of_error(self.fraction(Outcome::Soc), self.records.len())
    }
}

/// Binomial 95% margin of error for proportion `p` over `n` samples.
///
/// Degenerate inputs — no samples, or a proportion outside `[0, 1]`
/// (where the binomial variance is undefined) — report 0.0 rather than
/// a NaN that would poison downstream table math.
pub fn margin_of_error(p: f64, n: usize) -> f64 {
    if n == 0 || !(0.0..=1.0).contains(&p) {
        return 0.0;
    }
    1.96 * (p * (1.0 - p) / n as f64).sqrt()
}

/// How injection sites are drawn.
///
/// The paper (via FlipIt) samples *dynamic instances* uniformly, which
/// weights static instructions by execution frequency. Sampling static
/// sites uniformly instead gives rare instructions equal representation
/// in the training set — the `ablation_sampling` binary studies the
/// difference.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Uniform over dynamic eligible results (the paper's protocol).
    #[default]
    DynamicUniform,
    /// Uniform over executed static instructions, then uniform over
    /// that instruction's dynamic instances.
    StaticUniform,
}

impl SamplingMode {
    /// Stable wire token, shared by the campaign journal and the stored
    /// section-index artifacts.
    pub fn wire(self) -> &'static str {
        match self {
            SamplingMode::DynamicUniform => "dynamic",
            SamplingMode::StaticUniform => "static",
        }
    }

    /// Parses a [`SamplingMode::wire`] token.
    pub fn from_wire(token: &str) -> Option<SamplingMode> {
        match token {
            "dynamic" => Some(SamplingMode::DynamicUniform),
            "static" => Some(SamplingMode::StaticUniform),
            _ => None,
        }
    }
}

/// Runs a statistical fault-injection campaign against `workload`.
///
/// Each run targets a uniformly random dynamic instance among the
/// workload's eligible results and a uniformly random bit, matching the
/// paper's FlipIt configuration ("random instances of an instruction,
/// bits within a byte"). Runs execute in parallel across threads; the
/// result is deterministic for a given seed regardless of thread count.
///
/// # Errors
///
/// See [`run_campaign_with`].
pub fn run_campaign(
    workload: &Workload,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_with(workload, config, &CampaignOptions::default())
}

/// Like [`run_campaign`] with an explicit [`SamplingMode`].
///
/// # Errors
///
/// See [`run_campaign_with`].
pub fn run_campaign_sampled(
    workload: &Workload,
    config: &CampaignConfig,
    sampling: SamplingMode,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_with(
        workload,
        config,
        &CampaignOptions {
            sampling,
            ..CampaignOptions::default()
        },
    )
}

/// A completed plan index: either classified or degraded.
///
/// This is the unit the campaign runtime journals and the serving layer
/// streams: one pre-drawn plan either produced an [`InjectionRecord`]
/// or exhausted its retry budget as a [`HarnessFailure`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutcome {
    /// The plan was executed and classified.
    Record(InjectionRecord),
    /// The plan exhausted its retry budget without classifying.
    Failure(HarnessFailure),
}

/// Pre-draws the full injection plan list for a campaign.
///
/// All plans come from one RNG seeded with [`CampaignConfig::seed`], so
/// the plan list is a pure function of (workload, config, sampling) —
/// independent of thread count, scheduling, chunking, and resume state.
/// A resumed or chunked campaign re-draws the identical list and skips
/// the indices it already has.
///
/// The draw sequence is byte-compatible with the pre-model runtime for
/// [`FaultModel::SingleBit`]: same RNG, same integer widths (u64 space,
/// u32 bit), same per-plan draw order — so existing single-bit journals
/// and golden records stay valid.
///
/// # Errors
///
/// [`CampaignError::NoDynamicSites`] when the model's sample space is
/// empty; [`CampaignError::UnsupportedSampling`] for static-site
/// sampling of non-value models; [`CampaignError::Run`] /
/// [`CampaignError::MissingProfile`] when static-site profiling fails.
pub fn draw_plans(
    workload: &Workload,
    config: &CampaignConfig,
    sampling: SamplingMode,
) -> Result<Vec<Injection>, CampaignError> {
    let model = config.fault_model;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    match sampling {
        SamplingMode::DynamicUniform => {
            let space = workload.dynamic_sites(model.site_class());
            if space == 0 {
                return Err(CampaignError::NoDynamicSites { model });
            }
            let domain = model.bit_domain();
            Ok((0..config.runs)
                .map(|_| {
                    Injection::for_model(model, rng.gen_range(0..space), rng.gen_range(0..domain))
                })
                .collect())
        }
        SamplingMode::StaticUniform => {
            if !model.injects_values() {
                return Err(CampaignError::UnsupportedSampling { model });
            }
            let domain = model.bit_domain();
            let profile = profile_sites(workload)?;
            Ok((0..config.runs)
                .map(|_| {
                    let (site, count) = profile[rng.gen_range(0..profile.len())];
                    Injection {
                        target: rng.gen_range(0..count),
                        bit: rng.gen_range(0..domain),
                        site: Some(site),
                        model,
                    }
                })
                .collect())
        }
    }
}

/// Executes individual pre-drawn plans against one workload, with the
/// full resilient-runtime behavior (panic isolation, deterministic
/// jittered retries, wall-clock watchdog) of [`run_campaign_with`].
///
/// One executor is one worker's execution context: it owns a private
/// machine (resettable when compiled), so a pool splits a plan list
/// into chunks and gives each worker its own executor. Executing the
/// same `(plan_index, plan)` on any executor built from the same
/// campaign inputs yields the identical [`PlanOutcome`] — chunking is
/// invisible in the results.
pub struct PlanExecutor<'w> {
    workload: &'w Workload,
    runner: Runner<'w>,
    seed: u64,
    retry: RetryPolicy,
    run_deadline: Option<Duration>,
    budget: u64,
}

impl<'w> PlanExecutor<'w> {
    /// Builds an executor for one worker. Pass the campaign's shared
    /// [`CompiledProgram`] lowering to run on the compiled engine, or
    /// `None` for the reference tree-walker.
    pub fn new(
        workload: &'w Workload,
        seed: u64,
        options: &CampaignOptions,
        compiled: Option<&'w CompiledProgram>,
    ) -> Self {
        PlanExecutor {
            workload,
            runner: match compiled {
                Some(program) => Runner::Compiled(CompiledMachine::new(program)),
                None => Runner::Reference(&workload.module),
            },
            seed,
            retry: options.retry,
            run_deadline: options.run_deadline,
            budget: RunConfig::budget_from_nominal(workload.nominal_insts),
        }
    }

    /// Executes one plan under panic isolation and the retry policy.
    /// Never fails: an unclassifiable plan degrades to
    /// [`PlanOutcome::Failure`].
    pub fn execute(&mut self, plan_index: usize, plan: Injection) -> PlanOutcome {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max_attempts {
            // Every attempt starts from pristine machine state: the
            // reference machine is rebuilt (it is stateless) and the
            // compiled machine resets itself on entry, so a panicking
            // attempt cannot leak state into the retry. The verifier
            // runs inside the same isolation boundary — a panic in user
            // verification code is a harness failure, not an abort.
            let attempt_result = catch_unwind(AssertUnwindSafe(|| {
                classify_plan(
                    self.workload,
                    &mut self.runner,
                    self.run_deadline,
                    self.budget,
                    plan,
                    attempt,
                )
            }));
            match attempt_result {
                Ok(Ok(record)) => return PlanOutcome::Record(record),
                Ok(Err(message)) => last_error = message,
                Err(payload) => last_error = format!("panicked: {}", panic_message(&payload)),
            }
            if attempt < max_attempts {
                std::thread::sleep(backoff_delay(&self.retry, self.seed, plan_index, attempt));
            }
        }
        PlanOutcome::Failure(HarnessFailure {
            plan_index,
            target: plan.target,
            bit: plan.bit,
            attempts: max_attempts,
            error: last_error,
        })
    }
}

/// One worker's execution engine. The compiled variant holds a
/// resettable machine over the campaign's shared [`CompiledProgram`],
/// so per-run allocations amortize across the worker's whole plan
/// stream; the reference variant rebuilds its (stateless) machine per
/// attempt.
enum Runner<'w> {
    Reference(&'w Module),
    Compiled(CompiledMachine<'w>),
}

impl Runner<'_> {
    fn run(&mut self, config: &RunConfig) -> Result<RunOutput, RunError> {
        match self {
            Runner::Reference(module) => Machine::new(module).run(config),
            // `CompiledMachine::run` resets all machine state first, so
            // a previous panicking attempt cannot contaminate this one.
            Runner::Compiled(machine) => machine.run(config),
        }
    }
}

/// Runs a campaign under the full resilient runtime (see the crate docs'
/// *Campaign resilience* section and [`CampaignOptions`]).
///
/// # Errors
///
/// [`CampaignError::Run`] when static-site profiling cannot execute the
/// workload; [`CampaignError::Journal`] when the checkpoint journal
/// cannot be opened, resumed, or written. Failures of individual
/// injection runs are *not* errors: they surface as
/// [`CampaignResult::harness_failures`].
pub fn run_campaign_with(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
) -> Result<CampaignResult, CampaignError> {
    // Pre-draw all injection plans from one seeded RNG so the outcome
    // set is independent of scheduling — and of resume state: a resumed
    // campaign draws the identical plan list and simply skips the
    // journaled indices.
    let plans = draw_plans(workload, config, options.sampling)?;

    let (journal, resume) = match &options.journal {
        Some(path) => {
            let header = JournalHeader {
                workload: workload.name.clone(),
                entry: workload.entry.clone(),
                seed: config.seed,
                runs: config.runs,
                sampling: options.sampling,
                fault_model: config.fault_model,
                eligible_results: workload.eligible_results,
                nominal_insts: workload.nominal_insts,
                round_runs: None,
            };
            let (journal, resume) = CampaignJournal::open(path, &header)?;
            (Some(journal), resume)
        }
        None => (None, ResumeState::default()),
    };
    let resumed = resume.len();

    let slots: Vec<Mutex<Option<PlanOutcome>>> =
        (0..plans.len()).map(|_| Mutex::new(None)).collect();
    let ResumeState {
        records,
        failures,
        sections: _,
    } = resume;
    for (i, record) in records {
        *lock_ignoring_poison(&slots[i]) = Some(PlanOutcome::Record(record));
    }
    for (i, failure) in failures {
        *lock_ignoring_poison(&slots[i]) = Some(PlanOutcome::Failure(failure));
    }
    let pending: Vec<usize> = (0..plans.len())
        .filter(|i| lock_ignoring_poison(&slots[*i]).is_none())
        .collect();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let journal_error: Mutex<Option<JournalError>> = Mutex::new(None);

    // One lowering for the whole campaign; worker threads share it and
    // each run a private resettable machine against it.
    let compiled = match config.engine {
        Engine::Compiled => Some(CompiledProgram::compile(&workload.module)),
        Engine::Reference => None,
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut executor =
                    PlanExecutor::new(workload, config.seed, options, compiled.as_ref());
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let i = pending[n];
                    let slot = executor.execute(i, plans[i]);
                    if let Some(journal) = &journal {
                        let written = match &slot {
                            PlanOutcome::Record(record) => journal.append_record(i, record),
                            PlanOutcome::Failure(failure) => journal.append_failure(failure),
                        };
                        if let Err(e) = written {
                            // Losing the checkpoint makes further work
                            // unresumable; stop the campaign instead of
                            // silently continuing without it.
                            lock_ignoring_poison(&journal_error).get_or_insert(e);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    *lock_ignoring_poison(&slots[i]) = Some(slot);
                }
            });
        }
    });

    if let Some(e) = lock_ignoring_poison(&journal_error).take() {
        return Err(CampaignError::Journal(e));
    }

    let mut records = Vec::with_capacity(plans.len());
    let mut harness_failures = Vec::new();
    let mut missing = 0usize;
    for slot in slots {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(PlanOutcome::Record(record)) => records.push(record),
            Some(PlanOutcome::Failure(failure)) => harness_failures.push(failure),
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(CampaignError::Incomplete { missing });
    }
    harness_failures.sort_by_key(|f| f.plan_index);

    Ok(CampaignResult {
        records,
        harness_failures,
        resumed,
        nominal_insts: workload.nominal_insts,
    })
}

/// Locks a mutex, recovering the data from a poisoned lock. The holders
/// in this module only ever replace the value wholesale, so a panic
/// mid-critical-section cannot leave it torn.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// One isolated attempt: run the interpreter and classify the output.
fn classify_plan(
    workload: &Workload,
    runner: &mut Runner<'_>,
    run_deadline: Option<Duration>,
    budget: u64,
    plan: Injection,
    attempt: u32,
) -> Result<InjectionRecord, String> {
    let out = runner
        .run(&RunConfig {
            entry: workload.entry.clone(),
            args: workload.args.clone(),
            max_insts: budget,
            injection: Some(plan),
            profile_sites: false,
            trace_eligible: false,
            wall_limit: run_deadline,
        })
        .map_err(|e| format!("interpreter rejected the run: {e}"))?;
    let site = out
        .injected_site
        .ok_or_else(|| format!("injection target {} was never reached", plan.target))?;
    let injected_at = out
        .injected_at_inst
        .ok_or_else(|| "reached injection recorded no position".to_string())?;
    let outcome = classify(&out, &*workload.verifier);
    Ok(InjectionRecord {
        model: plan.model,
        site,
        target: plan.target,
        bit: plan.bit,
        outcome,
        dynamic_insts: out.dynamic_insts,
        latency: out.dynamic_insts.saturating_sub(injected_at),
        attempts: attempt,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic jittered exponential backoff before retry `attempt+1`
/// of `plan_index` (see [`RetryPolicy`]).
fn backoff_delay(retry: &RetryPolicy, seed: u64, plan_index: usize, attempt: u32) -> Duration {
    let exponential = retry
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(retry.max_backoff);
    let mut state =
        seed ^ (plan_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 32);
    let unit = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    exponential.mul_f64(0.5 + 0.5 * unit)
}

/// A static site paired with its eligible-execution count from a clean
/// profiling run.
pub type SiteCount = ((FuncId, InstId), u64);

/// Profiles the workload's per-site eligible-execution counts with one
/// clean run, returning executed sites in a deterministic order.
///
/// # Errors
///
/// [`CampaignError::Run`] when the workload's entry configuration is
/// invalid; [`CampaignError::MissingProfile`] when the interpreter
/// returns no profile despite it being requested.
pub fn profile_sites(workload: &Workload) -> Result<Vec<SiteCount>, CampaignError> {
    let mut machine = Machine::new(&workload.module);
    let out = machine
        .run(&RunConfig {
            entry: workload.entry.clone(),
            args: workload.args.clone(),
            profile_sites: true,
            ..RunConfig::default()
        })
        .map_err(|e| CampaignError::Run {
            stage: "site profiling",
            message: e.to_string(),
        })?;
    let mut sites: Vec<_> = out
        .site_profile
        .ok_or(CampaignError::MissingProfile)?
        .into_iter()
        .collect();
    sites.sort_by_key(|((f, i), _)| (f.index(), i.index()));
    Ok(sites)
}

/// Classifies one faulty run per §5.5.
pub fn classify(run: &RunOutput, verifier: &dyn OutputVerifier) -> Outcome {
    match run.status {
        RunStatus::Trapped(_) | RunStatus::Hang => Outcome::Symptom,
        RunStatus::Detected => Outcome::Detected,
        RunStatus::Completed(_) => {
            if verifier.verify(run) {
                Outcome::Masked
            } else {
                Outcome::Soc
            }
        }
    }
}

//! Statistical fault injection (the reproduction's FlipIt).
//!
//! The paper uses FlipIt (Calhoun et al.) to inject single-bit flips into
//! random LLVM instruction instances and classifies each run into the
//! four outcome categories of §5.5: observable symptom, detected by
//! duplication, masked, and silent output corruption (SOC). This crate
//! drives those campaigns against the `ipas-interp` virtual machine:
//!
//! * [`Workload`] — a module plus entry point, arguments, and an
//!   [`OutputVerifier`] that decides whether a completed run's output is
//!   acceptable (the user-provided verification routine of step 1);
//! * [`run_campaign`] — N injection runs at uniformly random dynamic
//!   instruction instances and bits, in parallel across threads, each
//!   classified into an [`Outcome`];
//! * [`CampaignResult`] — per-outcome counts, fractions, the margin of
//!   error of §6.2, and the per-injection records used to build SVM
//!   training sets.
//!
//! # Example
//!
//! ```
//! use ipas_faultsim::{run_campaign, CampaignConfig, GoldenToleranceVerifier, Workload};
//!
//! let module = ipas_lang::compile(
//!     "fn main() -> int { let s: int = 0;
//!        for (let i: int = 0; i < 50; i = i + 1) { s = s + i * i; }
//!        output_i(s); return 0; }",
//! ).unwrap();
//! let workload = Workload::serial("sum", module, GoldenToleranceVerifier::EXACT).unwrap();
//! let result = run_campaign(&workload, &CampaignConfig { runs: 40, seed: 7, threads: 2 });
//! assert_eq!(result.records.len(), 40);
//! assert!(result.fraction(ipas_faultsim::Outcome::Soc) <= 1.0);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use ipas_interp::{Injection, Machine, OutputStream, RunConfig, RunOutput, RunStatus, RtVal};
use ipas_ir::{FuncId, InstId, Module};
use rand::{Rng, SeedableRng};

/// The four §5.5 outcome categories of one fault-injection run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Crash, hang, or abort — recoverable by checkpoint/restart.
    Symptom,
    /// Caught by an inserted `__ipas_check_*` comparison.
    Detected,
    /// Run completed and the verification routine accepted the output.
    Masked,
    /// Run completed but the output is corrupted: silent output
    /// corruption.
    Soc,
}

impl Outcome {
    /// All outcomes, in reporting order.
    pub const ALL: [Outcome; 4] = [
        Outcome::Symptom,
        Outcome::Detected,
        Outcome::Masked,
        Outcome::Soc,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Symptom => "symptom",
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::Soc => "SOC",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Decides whether a completed faulty run's output is acceptable.
///
/// Implementations embed whatever golden data they need (reference
/// outputs, tolerances, conservation laws). They must be cheap: they run
/// once per injection.
pub trait OutputVerifier: Sync + Send {
    /// Returns `true` when the output is acceptable (fault masked).
    fn verify(&self, run: &RunOutput) -> bool;

    /// Human-readable description for reports.
    fn describe(&self) -> String {
        "unspecified verification routine".to_string()
    }
}

/// A verifier comparing the faulty output stream against a golden run:
/// integer items must match exactly; float items must match within an
/// absolute-or-relative tolerance; a different item count is SOC.
#[derive(Debug, Clone)]
pub struct GoldenToleranceVerifier {
    golden_ints: Vec<i64>,
    golden_floats: Vec<f64>,
    tolerance: f64,
}

impl GoldenToleranceVerifier {
    /// Tolerance used by [`Workload::serial`]'s `EXACT` marker: floats
    /// must match to 1e-9 relative.
    pub const EXACT: f64 = 1e-9;

    /// Builds a verifier from a golden output stream.
    pub fn new(golden: &OutputStream, tolerance: f64) -> Self {
        GoldenToleranceVerifier {
            golden_ints: golden.as_ints(),
            golden_floats: golden.as_floats(),
            tolerance,
        }
    }
}

impl OutputVerifier for GoldenToleranceVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let ints = run.outputs.as_ints();
        if ints != self.golden_ints {
            return false;
        }
        let floats = run.outputs.as_floats();
        if floats.len() != self.golden_floats.len() {
            return false;
        }
        floats.iter().zip(&self.golden_floats).all(|(a, g)| {
            let scale = g.abs().max(1.0);
            (a - g).abs() <= self.tolerance * scale && a.is_finite()
        })
    }

    fn describe(&self) -> String {
        format!(
            "golden comparison, {} ints exact, {} floats within {:.0e}",
            self.golden_ints.len(),
            self.golden_floats.len(),
            self.tolerance
        )
    }
}

/// Error preparing a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The golden (clean) run did not complete.
    GoldenRunFailed(String),
    /// The module has no eligible fault-injection sites.
    NoEligibleSites,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::GoldenRunFailed(s) => write!(f, "golden run failed: {s}"),
            WorkloadError::NoEligibleSites => write!(f, "no eligible fault-injection sites"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A module prepared for fault-injection campaigns: its golden run
/// statistics, entry configuration, and verification routine.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The (possibly protected) module under test.
    pub module: Module,
    /// Entry function name.
    pub entry: String,
    /// Entry arguments.
    pub args: Vec<RtVal>,
    /// The verification routine (shared with protected variants).
    pub verifier: std::sync::Arc<dyn OutputVerifier>,
    /// Dynamic instruction count of the clean run.
    pub nominal_insts: u64,
    /// Eligible (injectable) dynamic results in the clean run.
    pub eligible_results: u64,
    /// Golden outputs of the clean run.
    pub golden: OutputStream,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("entry", &self.entry)
            .field("nominal_insts", &self.nominal_insts)
            .field("eligible_results", &self.eligible_results)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Prepares a workload whose verifier is a golden-output comparison
    /// with float tolerance `tolerance` (use
    /// [`GoldenToleranceVerifier::EXACT`] for exact results). The golden
    /// run uses `main()` with no arguments.
    ///
    /// # Errors
    ///
    /// Fails when the clean run traps/hangs or there is nothing to
    /// inject into.
    pub fn serial(name: &str, module: Module, tolerance: f64) -> Result<Self, WorkloadError> {
        let golden = golden_run(&module, "main", &[])?;
        let verifier = std::sync::Arc::new(GoldenToleranceVerifier::new(&golden.outputs, tolerance));
        Self::with_verifier(name, module, "main", Vec::new(), verifier, golden)
    }

    /// Prepares a workload with a custom verifier built by `make` from
    /// the golden run (for conservation-law style checks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Workload::serial`].
    pub fn with_custom_verifier(
        name: &str,
        module: Module,
        entry: &str,
        args: Vec<RtVal>,
        make: impl FnOnce(&RunOutput) -> Box<dyn OutputVerifier>,
    ) -> Result<Self, WorkloadError> {
        let golden = golden_run(&module, entry, &args)?;
        let verifier = std::sync::Arc::from(make(&golden));
        Self::with_verifier(name, module, entry, args, verifier, golden)
    }

    fn with_verifier(
        name: &str,
        module: Module,
        entry: &str,
        args: Vec<RtVal>,
        verifier: std::sync::Arc<dyn OutputVerifier>,
        golden: RunOutput,
    ) -> Result<Self, WorkloadError> {
        if golden.eligible_results == 0 {
            return Err(WorkloadError::NoEligibleSites);
        }
        Ok(Workload {
            name: name.to_string(),
            module,
            entry: entry.to_string(),
            args,
            verifier,
            nominal_insts: golden.dynamic_insts,
            eligible_results: golden.eligible_results,
            golden: golden.outputs,
        })
    }

    /// Re-prepares this workload around a transformed (protected) module,
    /// re-running the golden run but keeping the same verifier.
    ///
    /// # Errors
    ///
    /// Fails when the transformed module's clean run fails — which would
    /// indicate a broken protection pass.
    pub fn with_module(&self, name: &str, module: Module) -> Result<Workload, WorkloadError>
    where
        Self: Sized,
    {
        let golden = golden_run(&module, &self.entry, &self.args)?;
        if golden.eligible_results == 0 {
            return Err(WorkloadError::NoEligibleSites);
        }
        Ok(Workload {
            name: name.to_string(),
            module,
            entry: self.entry.clone(),
            args: self.args.clone(),
            verifier: std::sync::Arc::clone(&self.verifier),
            nominal_insts: golden.dynamic_insts,
            eligible_results: golden.eligible_results,
            golden: golden.outputs,
        })
    }
}

fn golden_run(module: &Module, entry: &str, args: &[RtVal]) -> Result<RunOutput, WorkloadError> {
    let mut machine = Machine::new(module);
    let out = machine
        .run(&RunConfig {
            entry: entry.to_string(),
            args: args.to_vec(),
            ..RunConfig::default()
        })
        .map_err(|e| WorkloadError::GoldenRunFailed(e.to_string()))?;
    match out.status {
        RunStatus::Completed(_) => Ok(out),
        other => Err(WorkloadError::GoldenRunFailed(format!("{other:?}"))),
    }
}

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Number of injection runs (the paper uses 1,024 per configuration
    /// for evaluation and 2,500 for training).
    pub runs: usize,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 256,
            seed: 0,
            threads: 0,
        }
    }
}

/// One injection run's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// The static instruction whose dynamic instance was corrupted.
    pub site: (FuncId, InstId),
    /// The dynamic eligible-result index targeted.
    pub target: u64,
    /// The bit flipped (before width reduction).
    pub bit: u32,
    /// The classified outcome.
    pub outcome: Outcome,
    /// Dynamic instructions executed by the faulty run.
    pub dynamic_insts: u64,
    /// Dynamic instructions between the injection and the end of the
    /// run. For [`Outcome::Detected`] this is the detection latency of
    /// the inserted checks; for [`Outcome::Soc`] it is the latency a
    /// verification-only scheme would pay (the whole remaining run),
    /// which is the paper's §2.2 comparison.
    pub latency: u64,
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-run records (site, bit, outcome).
    pub records: Vec<InjectionRecord>,
    /// Nominal (clean) dynamic instruction count of the workload.
    pub nominal_insts: u64,
}

impl CampaignResult {
    /// Number of runs with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Fraction of runs with the given outcome.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.count(outcome) as f64 / self.records.len() as f64
        }
    }

    /// The 95% margin of error of the SOC fraction (§6.2): the binomial
    /// normal-approximation half-width `1.96·√(p(1−p)/n)`.
    pub fn soc_margin_of_error(&self) -> f64 {
        margin_of_error(self.fraction(Outcome::Soc), self.records.len())
    }
}

/// Binomial 95% margin of error for proportion `p` over `n` samples.
pub fn margin_of_error(p: f64, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    1.96 * (p * (1.0 - p) / n as f64).sqrt()
}

/// How injection sites are drawn.
///
/// The paper (via FlipIt) samples *dynamic instances* uniformly, which
/// weights static instructions by execution frequency. Sampling static
/// sites uniformly instead gives rare instructions equal representation
/// in the training set — the `ablation_sampling` binary studies the
/// difference.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Uniform over dynamic eligible results (the paper's protocol).
    #[default]
    DynamicUniform,
    /// Uniform over executed static instructions, then uniform over
    /// that instruction's dynamic instances.
    StaticUniform,
}

/// Runs a statistical fault-injection campaign against `workload`.
///
/// Each run targets a uniformly random dynamic instance among the
/// workload's eligible results and a uniformly random bit, matching the
/// paper's FlipIt configuration ("random instances of an instruction,
/// bits within a byte"). Runs execute in parallel across threads; the
/// result is deterministic for a given seed regardless of thread count.
pub fn run_campaign(workload: &Workload, config: &CampaignConfig) -> CampaignResult {
    run_campaign_sampled(workload, config, SamplingMode::DynamicUniform)
}

/// Like [`run_campaign`] with an explicit [`SamplingMode`].
pub fn run_campaign_sampled(
    workload: &Workload,
    config: &CampaignConfig,
    sampling: SamplingMode,
) -> CampaignResult {
    // Pre-draw all injection plans from one seeded RNG so the outcome
    // set is independent of scheduling.
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let plans: Vec<Injection> = match sampling {
        SamplingMode::DynamicUniform => (0..config.runs)
            .map(|_| {
                Injection::at_global_index(
                    rng.gen_range(0..workload.eligible_results),
                    rng.gen_range(0..64),
                )
            })
            .collect(),
        SamplingMode::StaticUniform => {
            let profile = profile_sites(workload);
            (0..config.runs)
                .map(|_| {
                    let (site, count) = profile[rng.gen_range(0..profile.len())];
                    Injection::at_site(site, rng.gen_range(0..count), rng.gen_range(0..64))
                })
                .collect()
        }
    };

    let budget = RunConfig::budget_from_nominal(workload.nominal_insts);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    };

    let next = AtomicUsize::new(0);
    let records: Vec<std::sync::Mutex<Option<InjectionRecord>>> =
        (0..plans.len()).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut machine = Machine::new(&workload.module);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= plans.len() {
                        break;
                    }
                    let plan = plans[i];
                    let out = machine
                        .run(&RunConfig {
                            entry: workload.entry.clone(),
                            args: workload.args.clone(),
                            max_insts: budget,
                            injection: Some(plan),
                            profile_sites: false,
                        })
                        .expect("golden run validated the entry configuration");
                    let outcome = classify(&out, &*workload.verifier);
                    let site = out
                        .injected_site
                        .expect("target < eligible_results implies the site is reached");
                    let injected_at = out
                        .injected_at_inst
                        .expect("reached injections record their position");
                    *records[i].lock().expect("no panics hold the lock") = Some(InjectionRecord {
                        site,
                        target: plan.target,
                        bit: plan.bit,
                        outcome,
                        dynamic_insts: out.dynamic_insts,
                        latency: out.dynamic_insts.saturating_sub(injected_at),
                    });
                }
            });
        }
    });

    CampaignResult {
        records: records
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("scope joined")
                    .expect("every index was processed")
            })
            .collect(),
        nominal_insts: workload.nominal_insts,
    }
}

/// Profiles the workload's per-site eligible-execution counts with one
/// clean run, returning executed sites in a deterministic order.
pub fn profile_sites(workload: &Workload) -> Vec<((FuncId, InstId), u64)> {
    let mut machine = Machine::new(&workload.module);
    let out = machine
        .run(&RunConfig {
            entry: workload.entry.clone(),
            args: workload.args.clone(),
            profile_sites: true,
            ..RunConfig::default()
        })
        .expect("golden run validated the entry configuration");
    let mut sites: Vec<_> = out
        .site_profile
        .expect("profiling was requested")
        .into_iter()
        .collect();
    sites.sort_by_key(|((f, i), _)| (f.index(), i.index()));
    sites
}

/// Classifies one faulty run per §5.5.
pub fn classify(run: &RunOutput, verifier: &dyn OutputVerifier) -> Outcome {
    match run.status {
        RunStatus::Trapped(_) | RunStatus::Hang => Outcome::Symptom,
        RunStatus::Detected => Outcome::Detected,
        RunStatus::Completed(_) => {
            if verifier.verify(run) {
                Outcome::Masked
            } else {
                Outcome::Soc
            }
        }
    }
}

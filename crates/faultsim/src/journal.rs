//! Campaign journaling: crash-safe checkpoint/resume for injection
//! campaigns.
//!
//! A [`CampaignJournal`] is a JSONL file. The first line is a header
//! that pins the campaign's identity (workload, seed, run count,
//! sampling mode, and the workload fingerprint); every subsequent line
//! is one completed plan index — either an [`InjectionRecord`] or a
//! [`HarnessFailure`]. Lines are appended and flushed one at a time, so
//! a killed campaign loses at most the entry being written; a torn
//! final line is detected and ignored on resume.
//!
//! The format is deliberately flat (string and integer fields only) so
//! it can be written and parsed without a serialization dependency, and
//! inspected with standard line tools.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ipas_ir::{FuncId, InstId};

use crate::{FaultModel, HarnessFailure, InjectionRecord, Outcome, PlanOutcome, SamplingMode};

/// Journal format version, bumped on incompatible line-format changes.
/// Version 2 added the fault model to the header and a per-record
/// schema version (`v`) plus fault model; version-1 journals are
/// rejected with a typed mismatch rather than silently merged.
/// Version 3 lets records carry an optional section id (`sec`) for
/// section-granular campaigns; version-2 journals (headers and
/// records) are still accepted on resume because every v2 line parses
/// identically under v3 — the section id is simply absent.
const FORMAT_VERSION: u64 = 3;

/// The newest *previous* format this version can still resume from.
const COMPAT_VERSION: u64 = 2;

/// Why a journal could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure on the journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The journal on disk belongs to a different campaign: resuming it
    /// would silently mix records from incompatible runs.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// Value recorded in the journal.
        journal: String,
        /// Value of the campaign being started.
        campaign: String,
    },
    /// A non-final line could not be parsed (final-line corruption is
    /// expected after a crash and tolerated).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal I/O error at {}: {error}", path.display())
            }
            JournalError::Mismatch {
                field,
                journal,
                campaign,
            } => write!(
                f,
                "journal belongs to a different campaign: {field} is {journal} \
                 in the journal but {campaign} in this campaign"
            ),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal line {line} is corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The campaign identity pinned by a journal's header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Workload display name.
    pub workload: String,
    /// Entry function name.
    pub entry: String,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Total planned runs.
    pub runs: usize,
    /// Site sampling mode.
    pub sampling: SamplingMode,
    /// The fault model every plan of the campaign applies. Journals
    /// never mix models: a resume under a different model is a typed
    /// mismatch.
    pub fault_model: FaultModel,
    /// Eligible dynamic results of the clean run (workload fingerprint:
    /// a changed module draws different plans for the same seed).
    pub eligible_results: u64,
    /// Dynamic instruction count of the clean run (fingerprint).
    pub nominal_insts: u64,
    /// Plans per adaptive round, when the campaign draws its plans in
    /// margin-weighted rounds. `None` for classic campaigns — the field
    /// is omitted from the header line, so pre-adaptive journals are
    /// byte-identical and still resume. Record `sec` tags then carry
    /// the round index instead of a section id.
    pub round_runs: Option<usize>,
}

/// Entries recovered from an existing journal, keyed by plan index.
#[derive(Debug, Default)]
pub struct ResumeState {
    /// Plan indices already classified.
    pub records: HashMap<usize, InjectionRecord>,
    /// Plan indices that exhausted their retry budget.
    pub failures: HashMap<usize, HarnessFailure>,
    /// Section ids carried by v3 section-tagged records, keyed by plan
    /// index. Plans journaled by a non-sectional campaign (or under the
    /// v2 format) are absent here.
    pub sections: HashMap<usize, u32>,
}

impl ResumeState {
    /// Number of recovered plan indices.
    pub fn len(&self) -> usize {
        self.records.len() + self.failures.len()
    }

    /// True when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.failures.is_empty()
    }

    /// True when `plan` needs no re-execution.
    pub fn contains(&self, plan: usize) -> bool {
        self.records.contains_key(&plan) || self.failures.contains_key(&plan)
    }
}

/// An append-only campaign checkpoint file (see module docs).
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl CampaignJournal {
    /// Opens (or creates) the journal at `path` for the campaign
    /// described by `header`, returning the journal and any entries
    /// recovered from a previous, interrupted invocation.
    ///
    /// # Errors
    ///
    /// [`JournalError::Mismatch`] when an existing journal was written
    /// by a different campaign; [`JournalError::Corrupt`] when a
    /// non-final line cannot be parsed; [`JournalError::Io`] on file
    /// errors.
    pub fn open(
        path: &Path,
        header: &JournalHeader,
    ) -> Result<(CampaignJournal, ResumeState), JournalError> {
        let io_err = |error| JournalError::Io {
            path: path.to_path_buf(),
            error,
        };
        let mut resume = ResumeState::default();
        let preexisting = path.exists();
        if preexisting {
            let mut text = String::new();
            File::open(path)
                .and_then(|mut f| f.read_to_string(&mut text))
                .map_err(io_err)?;
            resume = parse_journal(&text, header)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        if !preexisting {
            file.write_all(encode_header(header).as_bytes())
                .and_then(|()| file.flush())
                .map_err(io_err)?;
        }
        Ok((
            CampaignJournal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            resume,
        ))
    }

    /// Appends one classified record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the append fails; the campaign should
    /// stop rather than continue without its checkpoint.
    pub fn append_record(&self, plan: usize, record: &InjectionRecord) -> Result<(), JournalError> {
        self.append_line(&encode_record(plan, record, None))
    }

    /// Appends one classified record tagged with the section it was
    /// executed under (section-granular campaigns) and flushes it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignJournal::append_record`].
    pub fn append_record_in_section(
        &self,
        plan: usize,
        record: &InjectionRecord,
        section: u32,
    ) -> Result<(), JournalError> {
        self.append_line(&encode_record(plan, record, Some(section)))
    }

    /// Appends one harness failure and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignJournal::append_record`].
    pub fn append_failure(&self, failure: &HarnessFailure) -> Result<(), JournalError> {
        self.append_line(&encode_failure(failure))
    }

    /// Appends a whole chunk of completed plans in one write + flush.
    ///
    /// This is the chunked-execution writer: a worker that finished a
    /// stolen chunk checkpoints all of its outcomes with a single
    /// syscall instead of one write per plan. The buffer is written
    /// sequentially, so a crash mid-append can only tear the *final*
    /// line on disk — exactly the torn-tail shape resume already
    /// tolerates; every complete line before the tear is recovered.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignJournal::append_record`].
    pub fn append_outcomes(&self, outcomes: &[(usize, PlanOutcome)]) -> Result<(), JournalError> {
        self.append_outcomes_in_section(outcomes, None)
    }

    /// Like [`CampaignJournal::append_outcomes`], tagging each record of
    /// the chunk with a section id when `section` is set. Section-aligned
    /// chunks have one section, so the tag applies to the whole chunk.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignJournal::append_record`].
    pub fn append_outcomes_in_section(
        &self,
        outcomes: &[(usize, PlanOutcome)],
        section: Option<u32>,
    ) -> Result<(), JournalError> {
        if outcomes.is_empty() {
            return Ok(());
        }
        let mut buf = String::with_capacity(outcomes.len() * 128);
        for (plan, outcome) in outcomes {
            buf.push_str(&outcome_line_in_section(*plan, outcome, section));
        }
        self.append_line(&buf)
    }

    fn append_line(&self, line: &str) -> Result<(), JournalError> {
        // Recover the file from a poisoned lock: the holder only ever
        // writes a complete line or fails, and a torn tail is tolerated
        // on resume anyway.
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|error| JournalError::Io {
                path: self.path.clone(),
                error,
            })
    }
}

fn sampling_label(mode: SamplingMode) -> &'static str {
    mode.wire()
}

fn outcome_label(outcome: Outcome) -> &'static str {
    // Stable wire names, independent of the display labels.
    outcome.wire()
}

fn parse_outcome(label: &str) -> Option<Outcome> {
    Outcome::from_wire(label)
}

// ---------------------------------------------------------------------
// Flat JSON encoding (strings and unsigned integers only).

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct LineBuilder {
    buf: String,
}

impl LineBuilder {
    fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"kind\":\"");
        buf.push_str(kind);
        buf.push('"');
        LineBuilder { buf }
    }

    fn num(mut self, key: &str, value: u64) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(&value.to_string());
        self
    }

    fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    fn finish(mut self) -> String {
        self.buf.push_str("}\n");
        self.buf
    }
}

fn encode_header(h: &JournalHeader) -> String {
    let mut b = LineBuilder::new("header")
        .num("version", FORMAT_VERSION)
        .str("workload", &h.workload)
        .str("entry", &h.entry)
        .num("seed", h.seed)
        .num("runs", h.runs as u64)
        .str("sampling", sampling_label(h.sampling))
        .str("model", &h.fault_model.to_string())
        .num("eligible", h.eligible_results)
        .num("nominal", h.nominal_insts);
    // Added like the record `sec` tag: only present on adaptive
    // campaigns, so classic journals stay byte-identical.
    if let Some(rounds) = h.round_runs {
        b = b.num("rounds", rounds as u64);
    }
    b.finish()
}

fn encode_record(plan: usize, r: &InjectionRecord, section: Option<u32>) -> String {
    let mut b = LineBuilder::new("record")
        .num("v", FORMAT_VERSION)
        .num("plan", plan as u64)
        .str("model", &r.model.to_string())
        .num("func", r.site.0.index() as u64)
        .num("inst", r.site.1.index() as u64)
        .num("target", r.target)
        .num("bit", r.bit as u64)
        .str("outcome", outcome_label(r.outcome))
        .num("insts", r.dynamic_insts)
        .num("latency", r.latency)
        .num("attempts", r.attempts as u64);
    if let Some(sec) = section {
        b = b.num("sec", sec as u64);
    }
    b.finish()
}

/// Encodes one completed plan as its journal line (newline-terminated).
///
/// This is the journal wire format: the serving layer streams these
/// exact lines to watching clients, so a journal on disk and a watched
/// event stream are byte-interchangeable.
pub fn outcome_line(plan: usize, outcome: &PlanOutcome) -> String {
    outcome_line_in_section(plan, outcome, None)
}

/// Like [`outcome_line`], tagging a record with its section id when
/// `section` is set (harness failures are never section-tagged: their
/// plan index already identifies them).
pub fn outcome_line_in_section(plan: usize, outcome: &PlanOutcome, section: Option<u32>) -> String {
    match outcome {
        PlanOutcome::Record(record) => encode_record(plan, record, section),
        PlanOutcome::Failure(failure) => encode_failure(failure),
    }
}

fn encode_failure(f: &HarnessFailure) -> String {
    LineBuilder::new("harness_error")
        .num("plan", f.plan_index as u64)
        .num("target", f.target)
        .num("bit", f.bit as u64)
        .num("attempts", f.attempts as u64)
        .str("error", &f.error)
        .finish()
}

// ---------------------------------------------------------------------
// Flat JSON parsing.

#[derive(Debug, PartialEq)]
enum JsonVal {
    Num(u64),
    Str(String),
}

/// Parses one flat JSON object (`{"k":123,"k2":"v"}`) into key/value
/// pairs. Returns `None` on any syntax error.
fn parse_flat(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        if *chars.peek()? != '"' {
            return None;
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => JsonVal::Str(parse_string(&mut chars)?),
            c if c.is_ascii_digit() => {
                let mut digits = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    digits.push(chars.next().expect("peeked"));
                }
                JsonVal::Num(digits.parse().ok()?)
            }
            _ => return None,
        };
        fields.push((key, value));
    }
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    fn num(&self, key: &str) -> Option<u64> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                JsonVal::Num(n) => Some(*n),
                JsonVal::Str(_) => None,
            })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                JsonVal::Str(s) => Some(s.as_str()),
                JsonVal::Num(_) => None,
            })
    }
}

fn parse_journal(text: &str, expect: &JournalHeader) -> Result<ResumeState, JournalError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut resume = ResumeState::default();
    // A torn write can only affect the final line (appends are
    // sequential); anything unparsable before that is real corruption.
    let last = lines.len();
    for (i, line) in lines.iter().enumerate() {
        let line_no = i + 1;
        let is_last = line_no == last;
        let corrupt = |reason: String| JournalError::Corrupt {
            line: line_no,
            reason,
        };
        let Some(fields) = parse_flat(line).map(Fields) else {
            if is_last {
                break; // torn tail from a crash mid-append
            }
            return Err(corrupt("not a flat JSON object".into()));
        };
        let kind = fields.str("kind").unwrap_or("");
        if i == 0 {
            if kind != "header" {
                return Err(corrupt(format!(
                    "expected header line, found kind `{kind}`"
                )));
            }
            check_header(&fields, expect)?;
            continue;
        }
        match kind {
            "record" => {
                let missing = || corrupt("record line missing a field".into());
                // Records carry their own schema version and fault
                // model: a record written under a different schema or
                // model must never merge into this campaign's resume
                // set, even if the header happens to agree.
                let v = fields.num("v").unwrap_or(0);
                if v != FORMAT_VERSION && v != COMPAT_VERSION {
                    return Err(JournalError::Mismatch {
                        field: "record schema version",
                        journal: v.to_string(),
                        campaign: FORMAT_VERSION.to_string(),
                    });
                }
                let model: FaultModel = fields
                    .str("model")
                    .unwrap_or("")
                    .parse()
                    .map_err(|e: String| corrupt(e))?;
                if model != expect.fault_model {
                    return Err(JournalError::Mismatch {
                        field: "record fault model",
                        journal: model.to_string(),
                        campaign: expect.fault_model.to_string(),
                    });
                }
                let plan = fields.num("plan").ok_or_else(missing)? as usize;
                if plan >= expect.runs {
                    return Err(corrupt(format!(
                        "plan index {plan} out of range for {} runs",
                        expect.runs
                    )));
                }
                let outcome = fields
                    .str("outcome")
                    .and_then(parse_outcome)
                    .ok_or_else(|| corrupt("unknown outcome".into()))?;
                let record = InjectionRecord {
                    model,
                    site: (
                        FuncId::new(fields.num("func").ok_or_else(missing)? as usize),
                        InstId::new(fields.num("inst").ok_or_else(missing)? as usize),
                    ),
                    target: fields.num("target").ok_or_else(missing)?,
                    bit: fields.num("bit").ok_or_else(missing)? as u32,
                    outcome,
                    dynamic_insts: fields.num("insts").ok_or_else(missing)?,
                    latency: fields.num("latency").ok_or_else(missing)?,
                    attempts: fields.num("attempts").ok_or_else(missing)? as u32,
                };
                resume.failures.remove(&plan);
                resume.records.insert(plan, record);
                // Section tags exist only in the v3 format; a stray
                // `sec` on a v2 record is ignored rather than trusted.
                if v == FORMAT_VERSION {
                    match fields.num("sec") {
                        Some(sec) => {
                            resume.sections.insert(plan, sec as u32);
                        }
                        None => {
                            resume.sections.remove(&plan);
                        }
                    }
                } else {
                    resume.sections.remove(&plan);
                }
            }
            "harness_error" => {
                let missing = || corrupt("harness_error line missing a field".into());
                let plan = fields.num("plan").ok_or_else(missing)? as usize;
                if plan >= expect.runs {
                    return Err(corrupt(format!(
                        "plan index {plan} out of range for {} runs",
                        expect.runs
                    )));
                }
                let failure = HarnessFailure {
                    plan_index: plan,
                    target: fields.num("target").ok_or_else(missing)?,
                    bit: fields.num("bit").ok_or_else(missing)? as u32,
                    attempts: fields.num("attempts").ok_or_else(missing)? as u32,
                    error: fields.str("error").ok_or_else(missing)?.to_string(),
                };
                if !resume.records.contains_key(&plan) {
                    resume.failures.insert(plan, failure);
                }
            }
            other => {
                if is_last {
                    break;
                }
                return Err(corrupt(format!("unknown line kind `{other}`")));
            }
        }
    }
    Ok(resume)
}

fn check_header(fields: &Fields, expect: &JournalHeader) -> Result<(), JournalError> {
    let mismatch = |field: &'static str, journal: String, campaign: String| {
        Err(JournalError::Mismatch {
            field,
            journal,
            campaign,
        })
    };
    let version = fields.num("version").unwrap_or(0);
    if version != FORMAT_VERSION && version != COMPAT_VERSION {
        return mismatch(
            "format version",
            version.to_string(),
            FORMAT_VERSION.to_string(),
        );
    }
    let checks: [(&'static str, String, String); 8] = [
        (
            "workload",
            fields.str("workload").unwrap_or("").to_string(),
            expect.workload.clone(),
        ),
        (
            "entry",
            fields.str("entry").unwrap_or("").to_string(),
            expect.entry.clone(),
        ),
        (
            "seed",
            fields.num("seed").unwrap_or(0).to_string(),
            expect.seed.to_string(),
        ),
        (
            "runs",
            fields.num("runs").unwrap_or(0).to_string(),
            expect.runs.to_string(),
        ),
        (
            "sampling mode",
            fields.str("sampling").unwrap_or("").to_string(),
            sampling_label(expect.sampling).to_string(),
        ),
        (
            "fault model",
            fields.str("model").unwrap_or("").to_string(),
            expect.fault_model.to_string(),
        ),
        (
            "eligible results",
            fields.num("eligible").unwrap_or(0).to_string(),
            expect.eligible_results.to_string(),
        ),
        (
            "nominal instruction count",
            fields.num("nominal").unwrap_or(0).to_string(),
            expect.nominal_insts.to_string(),
        ),
    ];
    for (field, journal, campaign) in checks {
        if journal != campaign {
            return mismatch(field, journal, campaign);
        }
    }
    // The round size is optional (absent on classic campaigns); an
    // adaptive resume must agree on it, because round boundaries decide
    // which journaled labels feed which round's retraining.
    let display = |r: Option<u64>| match r {
        Some(n) => n.to_string(),
        None => "absent".to_string(),
    };
    if fields.num("rounds") != expect.round_runs.map(|r| r as u64) {
        return mismatch(
            "round size",
            display(fields.num("rounds")),
            display(expect.round_runs.map(|r| r as u64)),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            workload: "sum".into(),
            entry: "main".into(),
            seed: 7,
            runs: 16,
            sampling: SamplingMode::DynamicUniform,
            fault_model: FaultModel::SingleBit,
            eligible_results: 100,
            nominal_insts: 500,
            round_runs: None,
        }
    }

    fn record(plan: usize) -> InjectionRecord {
        InjectionRecord {
            model: FaultModel::SingleBit,
            site: (FuncId::new(1), InstId::new(2 + plan)),
            target: 40 + plan as u64,
            bit: 13,
            outcome: Outcome::Masked,
            dynamic_insts: 501,
            latency: 17,
            attempts: 1,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ipas-journal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let unique = format!(
            "{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        );
        dir.join(unique)
    }

    #[test]
    fn round_trips_records_and_failures() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, resume) = CampaignJournal::open(&path, &header()).expect("fresh");
            assert!(resume.is_empty());
            journal.append_record(3, &record(3)).expect("append");
            journal
                .append_failure(&HarnessFailure {
                    plan_index: 5,
                    target: 9,
                    bit: 63,
                    attempts: 3,
                    error: "panicked: \"quoted\"\nline two".into(),
                })
                .expect("append");
        }
        let (_journal, resume) = CampaignJournal::open(&path, &header()).expect("reopen");
        assert_eq!(resume.len(), 2);
        assert_eq!(resume.records[&3], record(3));
        assert_eq!(resume.failures[&5].error, "panicked: \"quoted\"\nline two");
        assert!(resume.contains(3) && resume.contains(5) && !resume.contains(0));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_mismatched_campaign() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(CampaignJournal::open(&path, &header()).expect("fresh"));
        let other = JournalHeader {
            seed: 8,
            ..header()
        };
        match CampaignJournal::open(&path, &other) {
            Err(JournalError::Mismatch { field: "seed", .. }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_mismatched_fault_model_header() {
        let path = temp_path("model-mismatch");
        let _ = std::fs::remove_file(&path);
        drop(CampaignJournal::open(&path, &header()).expect("fresh"));
        let other = JournalHeader {
            fault_model: FaultModel::BranchFlip,
            ..header()
        };
        match CampaignJournal::open(&path, &other) {
            Err(JournalError::Mismatch {
                field: "fault model",
                journal,
                campaign,
            }) => {
                assert_eq!(journal, "single-bit");
                assert_eq!(campaign, "branch-flip");
            }
            other => panic!("expected fault-model mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_record_from_different_model_or_schema() {
        // A record whose model disagrees with the (matching) header is
        // a typed mismatch — never silently merged.
        let path = temp_path("record-model");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = CampaignJournal::open(&path, &header()).expect("fresh");
            journal.append_record(0, &record(0)).expect("append");
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(&encode_record(
            1,
            &InjectionRecord {
                model: FaultModel::StuckValue,
                ..record(1)
            },
            None,
        ));
        // Pad with a valid line so the mixed record is not a torn tail.
        text.push_str(&encode_record(2, &record(2), None));
        std::fs::write(&path, &text).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "record fault model",
                ..
            }) => {}
            other => panic!("expected record fault-model mismatch, got {other:?}"),
        }

        // A record written under an older per-record schema (no `v`
        // field) is a schema-version mismatch.
        let mut old_schema = String::new();
        {
            let h = header();
            old_schema.push_str(&encode_header(&h));
        }
        old_schema.push_str(
            "{\"kind\":\"record\",\"plan\":0,\"func\":1,\"inst\":2,\"target\":40,\
             \"bit\":13,\"outcome\":\"masked\",\"insts\":501,\"latency\":17,\
             \"attempts\":1}\n",
        );
        old_schema.push_str(&encode_record(1, &record(1), None));
        std::fs::write(&path, &old_schema).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "record schema version",
                ..
            }) => {}
            other => panic!("expected record schema mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_version_one_journal() {
        let path = temp_path("v1");
        let _ = std::fs::remove_file(&path);
        let v1_header = "{\"kind\":\"header\",\"version\":1,\"workload\":\"sum\",\
             \"entry\":\"main\",\"seed\":7,\"runs\":16,\"sampling\":\"dynamic\",\
             \"eligible\":100,\"nominal\":500}\n";
        std::fs::write(&path, v1_header).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "format version",
                ..
            }) => {}
            other => panic!("expected format-version mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn resumes_version_two_journal() {
        // A journal written by the previous (v2) format resumes under
        // v3: same header fields, records without section tags.
        let path = temp_path("v2-compat");
        let _ = std::fs::remove_file(&path);
        let mut text = String::from(
            "{\"kind\":\"header\",\"version\":2,\"workload\":\"sum\",\
             \"entry\":\"main\",\"seed\":7,\"runs\":16,\"sampling\":\"dynamic\",\
             \"model\":\"single-bit\",\"eligible\":100,\"nominal\":500}\n",
        );
        text.push_str(
            "{\"kind\":\"record\",\"v\":2,\"plan\":3,\"model\":\"single-bit\",\
             \"func\":1,\"inst\":5,\"target\":43,\"bit\":13,\"outcome\":\"masked\",\
             \"insts\":501,\"latency\":17,\"attempts\":1}\n",
        );
        // A stray `sec` on a v2 record is not trusted: v2 writers never
        // emitted one, so it cannot mean what v3 means by it.
        text.push_str(
            "{\"kind\":\"record\",\"v\":2,\"plan\":4,\"model\":\"single-bit\",\
             \"func\":1,\"inst\":6,\"target\":44,\"bit\":13,\"outcome\":\"masked\",\
             \"insts\":501,\"latency\":17,\"attempts\":1,\"sec\":9}\n",
        );
        std::fs::write(&path, &text).expect("write");
        let (journal, resume) = CampaignJournal::open(&path, &header()).expect("v2 resumes");
        assert_eq!(resume.len(), 2);
        assert_eq!(resume.records[&3], record(3));
        assert!(resume.sections.is_empty(), "v2 records carry no sections");
        // Continuing the campaign appends v3 records into the same file,
        // and the mixed-version journal still resumes.
        journal
            .append_record_in_section(5, &record(5), 1)
            .expect("append");
        drop(journal);
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("mixed resumes");
        assert_eq!(resume.len(), 3);
        assert_eq!(resume.sections.get(&5), Some(&1));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn section_tags_round_trip_and_tolerate_torn_tail() {
        let path = temp_path("sections");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = CampaignJournal::open(&path, &header()).expect("fresh");
            journal
                .append_record_in_section(0, &record(0), 2)
                .expect("append");
            let chunk: Vec<(usize, PlanOutcome)> = vec![
                (1, PlanOutcome::Record(record(1))),
                (
                    2,
                    PlanOutcome::Failure(HarnessFailure {
                        plan_index: 2,
                        target: 7,
                        bit: 3,
                        attempts: 3,
                        error: "boom".into(),
                    }),
                ),
                (3, PlanOutcome::Record(record(3))),
            ];
            journal
                .append_outcomes_in_section(&chunk, Some(5))
                .expect("chunk append");
        }
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("reopen");
        assert_eq!(resume.len(), 4);
        assert_eq!(resume.sections.get(&0), Some(&2));
        assert_eq!(resume.sections.get(&1), Some(&5));
        assert_eq!(resume.sections.get(&3), Some(&5));
        assert!(
            !resume.sections.contains_key(&2),
            "harness failures are never section-tagged"
        );

        // Tearing the final (section-tagged) record drops only that
        // plan; earlier section tags survive.
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full.as_bytes()[..full.len() - 20]).expect("tear");
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("torn tolerated");
        assert_eq!(resume.len(), 3);
        assert_eq!(resume.sections.get(&1), Some(&5));
        assert!(!resume.contains(3), "torn section-tagged record re-runs");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_section_tagged_record_drift() {
        // Model and schema drift are caught on section-tagged records
        // exactly as on plain ones.
        let path = temp_path("sec-drift");
        let _ = std::fs::remove_file(&path);
        let mut text = encode_header(&header());
        text.push_str(&encode_record(
            0,
            &InjectionRecord {
                model: FaultModel::StuckValue,
                ..record(0)
            },
            Some(1),
        ));
        text.push_str(&encode_record(1, &record(1), Some(1)));
        std::fs::write(&path, &text).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "record fault model",
                ..
            }) => {}
            other => panic!("expected fault-model mismatch, got {other:?}"),
        }

        let mut text = encode_header(&header());
        text.push_str(
            "{\"kind\":\"record\",\"v\":1,\"plan\":0,\"model\":\"single-bit\",\
             \"func\":1,\"inst\":2,\"target\":40,\"bit\":13,\"outcome\":\"masked\",\
             \"insts\":501,\"latency\":17,\"attempts\":1,\"sec\":0}\n",
        );
        text.push_str(&encode_record(1, &record(1), Some(1)));
        std::fs::write(&path, &text).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "record schema version",
                ..
            }) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn round_size_header_pins_adaptive_identity() {
        // Classic headers never emit the field, so pre-adaptive
        // journals stay byte-identical.
        assert!(!encode_header(&header()).contains("rounds"));

        let path = temp_path("rounds");
        let _ = std::fs::remove_file(&path);
        let adaptive = JournalHeader {
            round_runs: Some(8),
            ..header()
        };
        drop(CampaignJournal::open(&path, &adaptive).expect("fresh"));
        // Same round size resumes; a classic campaign or a different
        // round size is a typed mismatch.
        drop(CampaignJournal::open(&path, &adaptive).expect("same rounds resume"));
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Mismatch {
                field: "round size",
                journal,
                campaign,
            }) => {
                assert_eq!(journal, "8");
                assert_eq!(campaign, "absent");
            }
            other => panic!("expected round-size mismatch, got {other:?}"),
        }
        let smaller = JournalHeader {
            round_runs: Some(4),
            ..header()
        };
        match CampaignJournal::open(&path, &smaller) {
            Err(JournalError::Mismatch {
                field: "round size",
                ..
            }) => {}
            other => panic!("expected round-size mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn tolerates_torn_final_line_only() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = CampaignJournal::open(&path, &header()).expect("fresh");
            journal.append_record(0, &record(0)).expect("append");
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"kind\":\"record\",\"plan\":1,\"fu"); // torn append
        std::fs::write(&path, &text).expect("write");
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("torn tail tolerated");
        assert_eq!(resume.len(), 1);

        // The same garbage before a valid line is corruption.
        let record_prefix = "{\"kind\":\"record\",\"v\":";
        assert!(text.contains(record_prefix), "record prefix drifted");
        let torn_middle = text.replacen(
            record_prefix,
            &format!("{{\"kind\":\"rec,\n{record_prefix}"),
            1,
        );
        std::fs::write(&path, &torn_middle).expect("write");
        match CampaignJournal::open(&path, &header()) {
            Err(JournalError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected corruption at line 2, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn chunked_append_resumes_after_torn_chunk() {
        // The chunked writer emits several lines in one write. A crash
        // mid-write tears the buffer at an arbitrary byte offset — but
        // the tear is always at the *end* of the file, so resume must
        // recover every complete line of the chunk and drop only the
        // torn tail.
        let path = temp_path("torn-chunk");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = CampaignJournal::open(&path, &header()).expect("fresh");
            let chunk: Vec<(usize, PlanOutcome)> = vec![
                (0, PlanOutcome::Record(record(0))),
                (1, PlanOutcome::Record(record(1))),
                (
                    2,
                    PlanOutcome::Failure(HarnessFailure {
                        plan_index: 2,
                        target: 7,
                        bit: 3,
                        attempts: 3,
                        error: "boom".into(),
                    }),
                ),
                (3, PlanOutcome::Record(record(3))),
            ];
            journal.append_outcomes(&chunk).expect("chunk append");
            journal
                .append_outcomes(&[])
                .expect("empty chunk is a no-op");
        }
        let full = std::fs::read_to_string(&path).expect("read");
        assert_eq!(full.lines().count(), 5, "header + 4 outcome lines");

        // Tear the final record mid-line (crash during the chunk write).
        let keep = full.len() - 25;
        std::fs::write(&path, &full.as_bytes()[..keep]).expect("tear");
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("torn chunk tolerated");
        assert_eq!(resume.len(), 3, "complete lines of the chunk survive");
        assert_eq!(resume.records[&0], record(0));
        assert_eq!(resume.records[&1], record(1));
        assert_eq!(resume.failures[&2].error, "boom");
        assert!(!resume.contains(3), "torn final record is re-executed");

        // Tear exactly on a line boundary: the last line is simply
        // missing, nothing is unparsable, and resume still works.
        let boundary = full
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i + 1)
            .nth(3)
            .expect("fourth newline");
        std::fs::write(&path, &full.as_bytes()[..boundary]).expect("boundary tear");
        let (_j, resume) = CampaignJournal::open(&path, &header()).expect("boundary tolerated");
        assert_eq!(resume.len(), 3);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn outcome_line_matches_single_append_encoding() {
        // The public wire encoder and the journal's own appends must
        // stay byte-identical: the serving layer streams outcome_line
        // output while the journal file is written through
        // append_record/append_outcomes.
        let rec_line = outcome_line(4, &PlanOutcome::Record(record(4)));
        assert_eq!(rec_line, encode_record(4, &record(4), None));
        let failure = HarnessFailure {
            plan_index: 9,
            target: 1,
            bit: 2,
            attempts: 3,
            error: "e".into(),
        };
        let fail_line = outcome_line(9, &PlanOutcome::Failure(failure.clone()));
        assert_eq!(fail_line, encode_failure(&failure));
        assert!(rec_line.ends_with('\n') && fail_line.ends_with('\n'));
    }

    #[test]
    fn flat_json_parser_handles_escapes() {
        let fields = parse_flat(r#"{"kind":"x","n":42,"s":"a\"b\\c\ndA"}"#).map(Fields);
        let fields = fields.expect("parses");
        assert_eq!(fields.num("n"), Some(42));
        assert_eq!(fields.str("s"), Some("a\"b\\c\ndA"));
        assert!(parse_flat("{\"unterminated\":\"").is_none());
        assert!(parse_flat("{\"a\":1} trailing").is_none());
    }
}

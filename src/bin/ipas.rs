//! `ipas` — command-line driver for the IPAS workflow.
//!
//! Protects a SciL program end to end: compiles it, runs the
//! fault-injection training campaign against a golden-output
//! verification routine, trains the classifier, applies selective
//! duplication, and writes the protected IR.
//!
//! ```text
//! USAGE:
//!   ipas protect <file.scil> [--runs N] [--eval N] [--top N]
//!                [--tolerance T] [--seed S] [--out FILE] [--policy P]
//!                [--model NAME|KEY]
//!   ipas train <file.scil> [--runs N] [--top N] [--seed S]
//!              [--tolerance T] [--policy ipas|baseline]
//!              [--save-model NAME]
//!   ipas models <list|verify|gc>   # requires IPAS_STORE_DIR
//!   ipas run <file.scil>            # compile + execute, print outputs
//!   ipas ir <file.scil> [--passes SPEC] [--stats] [--verify-each]
//!                                   # compile + print optimized IR
//!                                   # (--stats prints per-pass JSON)
//!   ipas passes list                # registered passes + default pipeline
//!   ipas passes verify [--passes SPEC]  # run the 5 workloads with
//!                                   # verification after every pass
//!   ipas inject <file.scil> --target K --bit B   # single fault run
//!   ipas explain <file.scil> [--runs N]    # per-instruction decisions
//!   ipas campaign <file.scil> [--runs N] [--seed S] [--fault-model M|all]
//!                 [--journal FILE]  # raw campaign, SOC/DDC/benign breakdown
//!                 [--sections] [--incremental [--baseline KEY]]
//!                                   # section-granular execution; incremental
//!                                   # reuses unchanged sections from the
//!                                   # store (see docs/incremental.md)
//!                 [--adaptive [--round-runs N] [--entropy-tol T] [--patience P]]
//!                                   # margin-driven active-learning rounds
//!                                   # (see docs/active-learning.md)
//!   ipas fuzz [--runs N] [--seed S] [--oracle NAME]   # differential fuzzing
//!   ipas serve [--socket PATH] [--state DIR] [--threads N] [--shards N]
//!              [--chunk N] [--quota-runs N]   # campaign daemon (see
//!                                             # docs/serving.md)
//!   ipas client <submit <file.scil>|status ID|watch ID|cancel ID|stats|shutdown>
//!               [--socket PATH] [--kind K] [--watch] [--tenant T] ...
//! ```
//!
//! `--fault-model` (on `campaign`, `train`, `protect`, `explain`, and
//! `fuzz`) selects what each injection corrupts: `single-bit`
//! (default), `burst<W>` (W adjacent bits), `stuck-value`,
//! `load-value`, `store-value`, or `branch-flip`. `ipas campaign
//! --fault-model all` compares every model side by side. See
//! `docs/fault-models.md`.
//!
//! `--engine` selects the execution engine for every interpreted run:
//! `compiled` (default; the pre-decoded engine) or `reference` (the
//! tree-walking interpreter). Both produce bit-identical results — the
//! knob only trades throughput, and exists so any discrepancy can be
//! cross-checked against the reference semantics.
//!
//! `--policy` selects `ipas` (default), `full`, or `baseline`.
//! The program's verified output stream is whatever it emits through
//! `output_i`/`output_f`; verification compares against the fault-free
//! run with float tolerance `--tolerance` (default 1e-9).
//!
//! When `IPAS_STORE_DIR` is set, every expensive stage (training
//! campaign, grid search, duplication, evaluation campaigns) is
//! memoized in the artifact store: re-running an identical command
//! resolves the stages from the store and performs zero injection runs
//! and zero SMO iterations. `ipas train --save-model NAME` registers
//! the best model under a human-chosen name; `ipas protect --model
//! NAME` reuses it without retraining.

use std::process::ExitCode;

use ipas::core::{
    campaign_fingerprint, compare_fault_models, dataset_from_artifact, eval_fingerprint,
    evaluate_variant, memoized_models, memoized_protect, render_model_table, run_campaign_adaptive,
    run_campaign_incremental, summary_fingerprint, train_top_configs, training_fingerprint,
    training_set_artifact, AdaptiveParams, AdaptiveResult, LabelKind, ProtectionPolicy,
    TrainedClassifier,
};
use ipas::faultsim::{
    margin_of_error, run_campaign, run_campaign_with, CampaignConfig, CampaignOptions,
    CampaignResult, Engine, FaultModel, Outcome, Workload,
};
use ipas::interp::{CompiledMachine, CompiledProgram, Injection, Machine, RunConfig};
use ipas::store::{CacheOutcome, CampaignSummary, Key, Store, TrainedModel, TrainingSet};
use ipas::svm::{Dataset, GridOptions};

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                // Valueless flags (--stats, --verify-each) must not
                // swallow a following flag as their value.
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap_or_default(),
                    _ => String::new(),
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipas <protect|train|run|ir|inject|explain|campaign> <file.scil> [--runs N] \
         [--eval N] [--top N] [--tolerance T] [--seed S] [--out FILE] \
         [--policy ipas|full|baseline] [--model NAME|KEY] [--save-model NAME] [--target K] \
         [--bit B]\n\
         \x20      [--engine reference|compiled] [--fault-model M]\n\
         \x20      ipas campaign <file.scil> [--runs N] [--seed S] [--fault-model M|all]\n\
         \x20                    [--journal FILE]   # raw campaign + SOC/DDC/benign breakdown\n\
         \x20                    [--sections] [--incremental [--baseline KEY]]\n\
         \x20                    # section-granular / reuse unchanged sections from the store\n\
         \x20                    [--adaptive [--round-runs N] [--entropy-tol T] [--patience P]]\n\
         \x20                    # margin-driven active-learning rounds (also on `train`)\n\
         \x20      ipas ir <file.scil> [--passes SPEC] [--stats] [--verify-each]\n\
         \x20      ipas passes <list|verify> [--passes SPEC]\n\
         \x20      ipas models <list|verify|gc>   (requires IPAS_STORE_DIR)\n\
         \x20      ipas fuzz [--runs N] [--seed S] [--oracle NAME] [--fault-model M]\n\
         \x20      ipas serve [--socket PATH] [--state DIR] [--threads N] [--shards N]\n\
         \x20                 [--chunk N] [--quota-runs N]   # campaign daemon\n\
         \x20      ipas client <submit <file.scil>|status ID|watch ID|cancel ID|stats|shutdown>\n\
         \x20                  [--socket PATH] [--kind campaign|protect|train|eval] [--watch]\n\
         \x20                  [--tenant T] [--name N] [--module-key KEY] [--deadline-ms MS]\n\
         \x20                  [--sections]   # campaign jobs: section-aligned chunks\n\
         \x20                  [--adaptive]   # campaign jobs: active-learning rounds\n\
         fault models M: single-bit (default), burst<W>, stuck-value, load-value, store-value, \
         branch-flip"
    );
    ExitCode::FAILURE
}

/// Parses `--fault-model` (default single-bit).
fn parse_fault_model(args: &Args) -> Result<FaultModel, ExitCode> {
    match args.flags.get("fault-model") {
        None => Ok(FaultModel::default()),
        Some(v) => v.parse().map_err(|e: String| {
            eprintln!("ipas: {e}");
            ExitCode::FAILURE
        }),
    }
}

/// Opens the store named by `IPAS_STORE_DIR`, exiting loudly on error.
fn store_from_env() -> Result<Option<Store>, ExitCode> {
    match Store::from_env() {
        Ok(s) => Ok(s),
        Err(e) => {
            eprintln!("ipas: cannot open artifact store: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn log_stage(stage: &str, outcome: CacheOutcome, key: &Key) {
    eprintln!(
        "[ipas] store: {stage} stage {} ({})",
        outcome.label(),
        key.short()
    );
}

/// Summarizes a finished campaign for the store.
fn summarize(name: &str, config: &CampaignConfig, r: &CampaignResult) -> CampaignSummary {
    CampaignSummary {
        workload: name.to_string(),
        runs: config.runs as u64,
        seed: config.seed,
        nominal_insts: r.nominal_insts,
        counts: Outcome::ALL.map(|o| r.count(o) as u64),
        harness_failures: r.harness_failures.len() as u64,
    }
}

/// Resolves `--model`: a registry name first, then a raw store key.
fn resolve_model(store: &Store, spec: &str) -> Result<(Key, TrainedClassifier), String> {
    let entry = store
        .registry()
        .lookup(spec)
        .map_err(|e| format!("registry lookup failed: {e}"))?;
    let key = match entry {
        Some(e) => e.key,
        None => Key::parse(spec)
            .map_err(|_| format!("`{spec}` is neither a registered model name nor a store key"))?,
    };
    let artifact = store
        .get::<TrainedModel>(&key)
        .map_err(|e| format!("cannot load model {key}: {e}"))?
        .ok_or_else(|| format!("no trained-model artifact under key {key}"))?;
    let model = TrainedClassifier::from_export(&artifact)
        .map_err(|e| format!("model {key} is inconsistent: {e}"))?;
    Ok((key, model))
}

/// Runs the training campaign (memoized when a store is configured) and
/// returns the training-set artifact.
fn training_stage(
    store: Option<&Store>,
    workload: &Workload,
    config: &CampaignConfig,
) -> Result<TrainingSet, String> {
    let fp = campaign_fingerprint(&workload.module, config);
    let key = Key::of(&fp);
    let run = || -> Result<TrainingSet, String> {
        eprintln!("[ipas] training campaign: {} injections ...", config.runs);
        let campaign =
            run_campaign(workload, config).map_err(|e| format!("training campaign failed: {e}"))?;
        Ok(training_set_artifact(workload, &campaign))
    };
    match store {
        Some(store) => {
            let (set, outcome) = store.memoize(&key, run).map_err(|e| match e {
                ipas::store::MemoError::Store(e) => format!("artifact store failed: {e}"),
                ipas::store::MemoError::Compute(e) => e,
            })?;
            log_stage("campaign", outcome, &key);
            Ok(set)
        }
        None => run(),
    }
}

/// Trains (or loads) the top-`top` classifiers for `label`.
fn classifier_stage(
    store: Option<&Store>,
    set: &TrainingSet,
    campaign_fp: &ipas::store::Fingerprint,
    label: LabelKind,
    grid: &GridOptions,
    top: usize,
) -> Result<(Vec<TrainedClassifier>, Key), String> {
    let data: Dataset = dataset_from_artifact(set, label);
    eprintln!(
        "[ipas] training set: {} samples, {:.1}% positive",
        data.len(),
        data.positive_fraction() * 100.0
    );
    if data.num_positive() == 0 || data.num_positive() == data.len() {
        return Err("degenerate training labels; raise --runs".to_string());
    }
    let fp = training_fingerprint(campaign_fp, label, grid, top);
    let (models, outcome) =
        memoized_models(store, &fp, top, || train_top_configs(&data, grid, top))
            .map_err(|e| format!("artifact store failed: {e}"))?;
    if store.is_some() {
        log_stage("training", outcome, &Key::of(&fp));
    }
    Ok((models, Key::ranked(&fp, 0)))
}

/// Evaluates a variant campaign via the store (warm runs perform zero
/// injections), or live when no store is configured.
#[allow(clippy::too_many_arguments)]
fn eval_stage(
    store: Option<&Store>,
    workload: &Workload,
    variant_module: &ipas::ir::Module,
    name: &str,
    config: &CampaignConfig,
) -> Result<CampaignSummary, String> {
    let run = || -> Result<CampaignSummary, String> {
        eprintln!("[ipas] {name} campaign: {} injections ...", config.runs);
        let wl = if std::ptr::eq(variant_module, &workload.module) {
            None
        } else {
            Some(
                workload
                    .with_module(name, variant_module.clone())
                    .map_err(|e| format!("{name}: clean run failed: {e}"))?,
            )
        };
        let wl = wl.as_ref().unwrap_or(workload);
        let campaign =
            run_campaign(wl, config).map_err(|e| format!("{name} campaign failed: {e}"))?;
        Ok(summarize(name, config, &campaign))
    };
    match store {
        Some(store) => {
            let fp = eval_fingerprint(&workload.module, variant_module, name, config);
            let key = Key::of(&fp);
            let (summary, outcome) = store.memoize(&key, run).map_err(|e| match e {
                ipas::store::MemoError::Store(e) => format!("artifact store failed: {e}"),
                ipas::store::MemoError::Compute(e) => e,
            })?;
            log_stage("eval", outcome, &key);
            Ok(summary)
        }
        None => run(),
    }
}

fn models_command(args: &Args) -> ExitCode {
    let action = args.positional.get(1).map(String::as_str).unwrap_or("list");
    let store = match store_from_env() {
        Ok(Some(s)) => s,
        Ok(None) => {
            eprintln!("ipas: `ipas models` needs IPAS_STORE_DIR to point at an artifact store");
            return ExitCode::FAILURE;
        }
        Err(code) => return code,
    };
    match action {
        "list" => {
            let entries = match store.list() {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("ipas: cannot list store: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{:<18} {:>9}  key", "kind", "bytes");
            for e in &entries {
                println!("{:<18} {:>9}  {}", e.kind.tag(), e.bytes, e.key);
            }
            match store.registry().entries() {
                Ok(named) if !named.is_empty() => {
                    println!("\nregistered models:");
                    for n in named {
                        println!("  {:<20} {} ({})", n.name, n.key.short(), n.note);
                    }
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("ipas: registry unreadable: {e}");
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "[ipas] {} artifacts in {}",
                entries.len(),
                store.root().display()
            );
            ExitCode::SUCCESS
        }
        "verify" => {
            let reports = match store.verify() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ipas: cannot verify store: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut bad = 0usize;
            for r in &reports {
                match &r.status {
                    Ok(schema) => println!(
                        "ok       {:<18} {} (schema {schema})",
                        r.entry.kind.tag(),
                        r.entry.key
                    ),
                    Err(e) => {
                        bad += 1;
                        println!("CORRUPT  {:<18} {}: {e}", r.entry.kind.tag(), r.entry.key);
                    }
                }
            }
            eprintln!(
                "[ipas] verified {} artifacts, {} damaged",
                reports.len(),
                bad
            );
            if bad == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "gc" => {
            let report = match store.gc() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ipas: gc failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for (kind, key) in &report.removed {
                println!("removed {:<18} {key}", kind.tag());
            }
            eprintln!(
                "[ipas] gc: kept {} registered, {} in use, swept {} stale tmp, \
                 removed {} unreferenced",
                report.kept,
                report.in_use,
                report.stale_tmp,
                report.removed.len()
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("ipas: unknown models action `{other}` (expected list|verify|gc)");
            ExitCode::FAILURE
        }
    }
}

/// Runs `module` once on the selected engine.
fn execute(
    module: &ipas::ir::Module,
    engine: Engine,
    config: &RunConfig,
) -> Result<ipas::interp::RunOutput, ipas::interp::RunError> {
    match engine {
        Engine::Reference => Machine::new(module).run(config),
        Engine::Compiled => {
            let program = CompiledProgram::compile(module);
            CompiledMachine::new(&program).run(config)
        }
    }
}

/// Prints the SOC/DDC/benign breakdown to stdout. Shared verbatim by
/// the classic, `--sections`, and `--incremental` campaign paths so
/// their stdout can be compared byte for byte.
fn print_breakdown(fault_model: FaultModel, summary: &CampaignSummary) {
    // §5.5 outcome slots: [symptom, detected, masked, soc].
    let classified: u64 = summary.counts.iter().sum();
    let soc = summary.counts[3];
    let ddc = summary.counts[0] + summary.counts[1];
    let benign = summary.counts[2];
    let moe = margin_of_error(summary.fraction(3), classified as usize);
    println!(
        "model {fault_model}: {classified} classified runs, {} harness failures",
        summary.harness_failures
    );
    println!(
        "  SOC    {soc:>6}  ({:.2}% ± {:.2}%)",
        summary.fraction(3) * 100.0,
        moe * 100.0
    );
    println!(
        "  DDC    {ddc:>6}  (detected {} + symptom {})",
        summary.counts[1], summary.counts[0]
    );
    println!("  benign {benign:>6}");
}

/// `ipas campaign` — a raw fault-injection campaign (no training, no
/// protection) with a SOC/DDC/Benign breakdown. `--fault-model all`
/// runs one campaign per model and prints the comparison table with
/// per-model classifier F-scores against the single-bit baseline.
fn campaign_command(args: &Args, module: ipas::ir::Module, engine: Engine) -> ExitCode {
    let runs = args.get("runs", 400usize);
    let seed = args.get("seed", 2016u64);
    let tolerance = args.get("tolerance", 1e-9f64);
    let workload = match Workload::serial("cli", module, tolerance) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ipas: golden run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[ipas] golden run: {} dynamic insts — {} value sites, {} loads, {} stores, {} branches",
        workload.nominal_insts,
        workload.eligible_results,
        workload.loads,
        workload.stores,
        workload.cond_branches
    );

    if args.flags.get("fault-model").map(String::as_str) == Some("all") {
        if args.flags.contains_key("journal") {
            eprintln!("ipas: --journal is per-model; use a single --fault-model with it");
            return ExitCode::FAILURE;
        }
        if args.flags.contains_key("adaptive") {
            eprintln!("ipas: --adaptive needs a single --fault-model, not `all`");
            return ExitCode::FAILURE;
        }
        let base = CampaignConfig {
            runs,
            seed,
            threads: 0,
            engine,
            fault_model: FaultModel::default(),
        };
        eprintln!(
            "[ipas] comparing {} fault models, {runs} injections each ...",
            FaultModel::ALL.len()
        );
        match compare_fault_models(&workload, &base, &FaultModel::ALL, &GridOptions::quick()) {
            Ok(rows) => {
                print!("{}", render_model_table(&rows));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ipas: campaign failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let fault_model = match parse_fault_model(args) {
            Ok(m) => m,
            Err(code) => return code,
        };
        let config = CampaignConfig {
            runs,
            seed,
            threads: 0,
            engine,
            fault_model,
        };
        let options = CampaignOptions {
            journal: args
                .flags
                .get("journal")
                .map(std::path::PathBuf::from)
                .filter(|p| !p.as_os_str().is_empty()),
            ..CampaignOptions::default()
        };
        let store = match store_from_env() {
            Ok(s) => s,
            Err(code) => return code,
        };
        if args.flags.contains_key("adaptive") {
            if args.flags.contains_key("sections")
                || args.flags.contains_key("incremental")
                || args.flags.contains_key("baseline")
            {
                eprintln!(
                    "ipas: --adaptive draws its own round-by-round plans and cannot \
                     combine with --sections or --incremental"
                );
                return ExitCode::FAILURE;
            }
            return adaptive_campaign(args, &workload, &config, &options);
        }
        if args.flags.contains_key("incremental") || args.flags.contains_key("baseline") {
            return incremental_campaign(args, &workload, &config, &options, store);
        }
        if args.flags.contains_key("sections") {
            return sectional_campaign(&workload, &config, &options);
        }
        let run = || -> Result<CampaignSummary, String> {
            eprintln!("[ipas] campaign: {runs} {fault_model} injections ...");
            let result = run_campaign_with(&workload, &config, &options)
                .map_err(|e| format!("campaign failed: {e}"))?;
            if result.resumed > 0 {
                eprintln!(
                    "[ipas] journal: {} records resumed from disk",
                    result.resumed
                );
            }
            Ok(summarize("cli", &config, &result))
        };
        // Journaled runs always execute (the journal file is the
        // point); otherwise the summary memoizes under a model-aware
        // key when a store is configured.
        let summary = match (&store, options.journal.is_none()) {
            (Some(store), true) => {
                let fp = summary_fingerprint(&workload.module, "cli", &config);
                let key = Key::of(&fp);
                match store.memoize(&key, run) {
                    Ok((summary, outcome)) => {
                        log_stage("campaign", outcome, &key);
                        Ok(summary)
                    }
                    Err(ipas::store::MemoError::Store(e)) => {
                        Err(format!("artifact store failed: {e}"))
                    }
                    Err(ipas::store::MemoError::Compute(e)) => Err(e),
                }
            }
            _ => run(),
        };
        let summary = match summary {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ipas: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_breakdown(fault_model, &summary);
        if let Some(path) = &options.journal {
            eprintln!("[ipas] journal written to {}", path.display());
        }
        ExitCode::SUCCESS
    }
}

/// Reads `--round-runs`, `--entropy-tol`, and `--patience` over the
/// budget defaults, shared by `ipas campaign --adaptive` and
/// `ipas train --adaptive`.
fn adaptive_params(args: &Args, runs: usize) -> AdaptiveParams {
    let mut params = AdaptiveParams::for_budget(runs);
    params.round_runs = args.get("round-runs", params.round_runs).max(1);
    params.entropy_tol = args.get("entropy-tol", params.entropy_tol);
    params.patience = args.get("patience", params.patience);
    params
}

/// Per-round stderr report shared by the adaptive campaign and train
/// paths.
fn print_rounds(out: &AdaptiveResult, budget: usize) {
    for r in &out.rounds {
        eprintln!(
            "[ipas] round {}: {} plans ({}), label entropy {:.3}, \
             {} resumed, {} executed",
            r.round,
            r.drawn,
            r.sampling.label(),
            r.entropy,
            r.resumed,
            r.executed
        );
    }
    let drawn: usize = out.rounds.iter().map(|r| r.drawn).sum();
    eprintln!(
        "[ipas] adaptive: {} rounds, {drawn} of {budget} budgeted runs{}",
        out.rounds.len(),
        if out.stopped_early {
            " (stopped early: label entropy stable)"
        } else {
            ""
        }
    );
}

/// `ipas campaign --adaptive`: a uniform seed round, then rounds drawn
/// from a margin-weighted site distribution under a freshly retrained
/// classifier, stopping when the label entropy stabilizes. Round
/// reports go to stderr; stdout keeps the shared breakdown format.
fn adaptive_campaign(
    args: &Args,
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
) -> ExitCode {
    let params = adaptive_params(args, config.runs);
    eprintln!(
        "[ipas] campaign: adaptive, budget {} {} injections in rounds of {} ...",
        config.runs, config.fault_model, params.round_runs
    );
    let out = match run_campaign_adaptive(workload, config, options, &params) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("ipas: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_rounds(&out, config.runs);
    if out.result.resumed > 0 {
        eprintln!(
            "[ipas] journal: {} records resumed from disk",
            out.result.resumed
        );
    }
    let summary = summarize("cli", config, &out.result);
    print_breakdown(config.fault_model, &summary);
    if let Some(path) = &options.journal {
        eprintln!("[ipas] journal written to {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `ipas campaign --sections`: the same campaign executed section by
/// section — partition the module, run each section's plan slice,
/// splice. The partition shape goes to stderr; stdout stays
/// byte-identical to the classic path.
fn sectional_campaign(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
) -> ExitCode {
    eprintln!(
        "[ipas] campaign: {} {} injections across sections ...",
        config.runs, config.fault_model
    );
    let campaign = match ipas::faultsim::sections::run_campaign_sectional(workload, config, options)
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ipas: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[ipas] sections: {} sections, {} plans",
        campaign.partition.len(),
        campaign.assignment.len()
    );
    if campaign.result.resumed > 0 {
        eprintln!(
            "[ipas] journal: {} records resumed from disk",
            campaign.result.resumed
        );
    }
    let summary = summarize("cli", config, &campaign.result);
    print_breakdown(config.fault_model, &summary);
    if let Some(path) = &options.journal {
        eprintln!("[ipas] journal written to {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `ipas campaign --incremental [--baseline KEY]`: section-granular
/// campaign that stores one profile per section and, given a baseline
/// (a prior run's section-index key), reuses profiles for sections
/// whose code and plan slice are unchanged. Reuse statistics and the
/// new baseline key go to stderr; stdout stays byte-identical to a
/// from-scratch campaign on the same module.
fn incremental_campaign(
    args: &Args,
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
    store: Option<Store>,
) -> ExitCode {
    let Some(store) = store else {
        eprintln!("ipas: --incremental needs IPAS_STORE_DIR (section profiles live in the store)");
        return ExitCode::FAILURE;
    };
    let baseline = match args.flags.get("baseline") {
        None => None,
        Some(v) => match Key::parse(v) {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("ipas: bad --baseline: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    eprintln!(
        "[ipas] campaign: {} {} injections, incremental ...",
        config.runs, config.fault_model
    );
    let outcome =
        match run_campaign_incremental(&store, workload, config, options, baseline.as_ref()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("ipas: campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    eprintln!(
        "[ipas] incremental: sections reused {} of {}",
        outcome.sections_reused, outcome.sections_total
    );
    eprintln!(
        "[ipas] incremental: injections executed {} of {}",
        outcome.injections_executed, outcome.injections_total
    );
    eprintln!(
        "[ipas] incremental: baseline {} (pass via --baseline next run)",
        outcome.index_key.as_str()
    );
    if outcome.result.resumed > 0 {
        eprintln!(
            "[ipas] journal: {} records resumed from disk",
            outcome.result.resumed
        );
    }
    let summary = summarize("cli", config, &outcome.result);
    print_breakdown(config.fault_model, &summary);
    if let Some(path) = &options.journal {
        eprintln!("[ipas] journal written to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn fuzz_command(args: &Args) -> ExitCode {
    let runs = args.get("runs", 500u64);
    let seed = args.get("seed", 2016u64);
    let oracles = match args.flags.get("oracle") {
        None => ipas::fuzz::OracleKind::ALL.to_vec(),
        Some(name) => match ipas::fuzz::OracleKind::from_name(name) {
            Some(o) => vec![o],
            None => {
                let known: Vec<&str> = ipas::fuzz::OracleKind::ALL
                    .iter()
                    .map(|o| o.name())
                    .collect();
                eprintln!(
                    "ipas: unknown oracle `{name}`; expected one of {}",
                    known.join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let fault_model = match args.flags.get("fault-model") {
        None => None,
        Some(v) => match v.parse::<FaultModel>() {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("ipas: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let report = ipas::fuzz::run_fuzz(ipas::fuzz::FuzzConfig {
        runs,
        seed,
        oracles,
        fault_model,
    });
    println!("{}", report.summary());
    for f in &report.findings {
        eprintln!(
            "\n[ipas] finding: {} oracle, case {} ({} input)",
            f.oracle.name(),
            f.case,
            f.input_kind
        );
        eprintln!("  {}", f.divergence);
        if let Some(key) = &f.store_key {
            eprintln!("  repro persisted under store key {key}");
        }
        eprintln!("  minimized repro:");
        for line in f.minimized.lines() {
            eprintln!("    {line}");
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `ipas passes <list|verify>` — introspection over the pass-manager
/// registry. `list` prints every registered pass; `verify` compiles the
/// five paper workloads unoptimized and runs the pipeline (default or
/// `--passes SPEC`) with verification interleaved after every pass
/// application.
fn passes_command(args: &Args) -> ExitCode {
    use ipas::ir::passmgr::{pass_descriptions, PassManager, PipelineSpec, DEFAULT_PIPELINE};
    let action = args.positional.get(1).map(String::as_str).unwrap_or("list");
    match action {
        "list" => {
            println!("registered function passes:");
            for (name, what) in pass_descriptions() {
                println!("  {name:<14} {what}");
            }
            println!("module passes:");
            println!(
                "  {:<14} IPAS selective duplication (appended by protection policies)",
                "duplicate"
            );
            println!("default pipeline: {DEFAULT_PIPELINE}");
            ExitCode::SUCCESS
        }
        "verify" => {
            let spec = match args.flags.get("passes") {
                None => PipelineSpec::default_optimization(),
                Some(text) => match PipelineSpec::parse(text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("ipas: invalid --passes spec: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let mut failed = false;
            for kind in ipas::workloads::Kind::ALL {
                let src = ipas::workloads::sources::source(kind);
                let mut module = match ipas::lang::compile_unoptimized(src, kind.name()) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("[ipas] {}: does not compile: {e}", kind.name());
                        failed = true;
                        continue;
                    }
                };
                let mut pm = match PassManager::from_spec(&spec) {
                    Ok(pm) => pm,
                    Err(e) => {
                        eprintln!("ipas: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                pm.set_verify_each(true);
                match pm.run_module(&mut module) {
                    Ok(_) => eprintln!(
                        "[ipas] {}: ok — {} pass executions, {} skipped, verified after each",
                        kind.name(),
                        pm.stats().executions,
                        pm.stats().skipped
                    ),
                    Err(e) => {
                        eprintln!("[ipas] {}: FAILED: {e}", kind.name());
                        failed = true;
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// `ipas ir` with pipeline flags: compiles the program *unoptimized*,
/// runs the requested pipeline through the pass manager, then prints
/// the optimized IR — or, with `--stats`, the per-pass statistics JSON.
fn ir_pipeline_command(args: &Args, source: &str, path: &str) -> ExitCode {
    use ipas::ir::passmgr::{PassManager, PipelineSpec};
    let spec = match args.flags.get("passes") {
        None => PipelineSpec::default_optimization(),
        Some(text) => match PipelineSpec::parse(text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ipas: invalid --passes spec: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut module = match ipas::lang::compile_unoptimized(source, "scil") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ipas: {path}:{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut pm = match PassManager::from_spec(&spec) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("ipas: {e}");
            return ExitCode::FAILURE;
        }
    };
    pm.set_verify_each(args.flags.contains_key("verify-each"));
    pm.set_timing(args.flags.contains_key("stats"));
    if let Err(e) = pm.run_module(&mut module) {
        eprintln!("ipas: pipeline failed: {e}");
        return ExitCode::FAILURE;
    }
    if args.flags.contains_key("stats") {
        println!("{}", pm.stats().to_json(&pm.describe()));
    } else {
        print!("{module}");
    }
    ExitCode::SUCCESS
}

/// `ipas serve`: run the campaign daemon until SIGTERM/SIGINT or a
/// client-requested shutdown, then print what it did.
fn serve_command(args: &Args) -> ExitCode {
    let config = ipas::serve::DaemonConfig {
        socket: args.get("socket", "ipas-serve.sock".to_string()).into(),
        state_dir: args.get("state", "ipas-serve-state".to_string()).into(),
        threads: args.get("threads", 0usize),
        shards: args.get("shards", 0usize),
        chunk: args.get("chunk", 32usize),
        quota_runs: args.get("quota-runs", 0u64),
    };
    eprintln!(
        "[ipas] serve: listening on {} (state {})",
        config.socket.display(),
        config.state_dir.display()
    );
    match ipas::serve::run_daemon(config) {
        Ok(report) => {
            eprintln!(
                "[ipas] serve: exiting — {} jobs, {} injection runs executed, \
                 {} tasks abandoned for restart-resume",
                report.jobs, report.executed_runs, report.abandoned_tasks
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ipas: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `ipas client <submit|status|watch|cancel|stats|shutdown>`: talk to a
/// running daemon. Artifact payloads go to stdout, progress to stderr.
fn client_command(args: &Args) -> ExitCode {
    use ipas::core::jobspec::{JobKind, JobSpec};

    let Some(action) = args.positional.get(1).map(String::as_str) else {
        eprintln!("ipas: client needs an action (submit|status|watch|cancel|stats|shutdown)");
        return ExitCode::FAILURE;
    };
    let client = ipas::serve::Client::new(args.get("socket", "ipas-serve.sock".to_string()));
    let fail = |e: ipas::serve::ServeError| {
        eprintln!("ipas: {e}");
        ExitCode::FAILURE
    };
    match action {
        "submit" => {
            let Some(path) = args.positional.get(2) else {
                eprintln!("ipas: client submit needs a <file.scil> argument");
                return ExitCode::FAILURE;
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ipas: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let kind_label = args.get("kind", "protect".to_string());
            let Some(kind) = JobKind::from_label(&kind_label) else {
                eprintln!(
                    "ipas: unknown job kind `{kind_label}` (expected \
                     campaign|protect|train|eval)"
                );
                return ExitCode::FAILURE;
            };
            let default_name = std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "job".to_string());
            let mut spec = JobSpec::new(
                kind,
                &args.get("tenant", "default".to_string()),
                &args.get("name", default_name),
                &source,
            );
            spec.runs = args.get("runs", 400usize);
            spec.eval_runs = args.get("eval", spec.runs);
            spec.top = args.get("top", 1usize);
            spec.seed = args.get("seed", 2016u64);
            spec.tolerance = args.get("tolerance", 1e-9f64);
            spec.policy = args.get("policy", "ipas".to_string());
            spec.deadline_ms = args.get("deadline-ms", 0u64);
            spec.engine = match args.flags.get("engine") {
                None => Engine::default(),
                Some(v) => match v.parse() {
                    Ok(engine) => engine,
                    Err(e) => {
                        eprintln!("ipas: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            spec.fault_model = match parse_fault_model(args) {
                Ok(fm) => fm,
                Err(code) => return code,
            };
            spec.module_key = args.flags.get("module-key").cloned();
            spec.sections = args.flags.contains_key("sections");
            spec.adaptive = args.flags.contains_key("adaptive");
            if let Err(e) = spec.validate() {
                eprintln!("ipas: invalid job: {e}");
                return ExitCode::FAILURE;
            }
            let watch = args.flags.contains_key("watch");
            let mut stdout = std::io::stdout();
            let mut stderr = std::io::stderr();
            match client.submit(&spec, watch, &mut stdout, &mut stderr) {
                Ok(outcome) => {
                    eprintln!(
                        "[ipas] client: job {} {}",
                        outcome.id,
                        if outcome.coalesced {
                            "coalesced onto an identical in-flight job"
                        } else {
                            "accepted"
                        }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "status" | "cancel" => {
            let Some(id) = args.positional.get(2) else {
                eprintln!("ipas: client {action} needs a <job-id> argument");
                return ExitCode::FAILURE;
            };
            let result = if action == "status" {
                client.status(id)
            } else {
                client.cancel(id)
            };
            match result {
                Ok(line) => {
                    print!("{line}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "watch" => {
            let Some(id) = args.positional.get(2) else {
                eprintln!("ipas: client watch needs a <job-id> argument");
                return ExitCode::FAILURE;
            };
            let mut stdout = std::io::stdout();
            let mut stderr = std::io::stderr();
            match client.watch(id, &mut stdout, &mut stderr) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        "stats" | "shutdown" => {
            let result = if action == "stats" {
                client.stats()
            } else {
                client.shutdown()
            };
            match result {
                Ok(line) => {
                    print!("{line}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        other => {
            eprintln!(
                "ipas: unknown client action `{other}` \
                 (expected submit|status|watch|cancel|stats|shutdown)"
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let Some(cmd) = args.positional.first() else {
        return usage();
    };
    let engine = match args.flags.get("engine") {
        None => Engine::default(),
        Some(v) => match v.parse::<Engine>() {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("ipas: {e}");
                return usage();
            }
        },
    };
    if cmd == "models" {
        return models_command(&args);
    }
    if cmd == "fuzz" {
        return fuzz_command(&args);
    }
    if cmd == "passes" {
        return passes_command(&args);
    }
    if cmd == "serve" {
        return serve_command(&args);
    }
    if cmd == "client" {
        return client_command(&args);
    }
    let Some(path) = args.positional.get(1) else {
        return usage();
    };
    if !matches!(
        cmd.as_str(),
        "protect" | "train" | "run" | "ir" | "inject" | "explain" | "campaign"
    ) {
        return usage();
    }
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipas: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let module = match ipas::lang::compile(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ipas: {path}:{e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "campaign" => campaign_command(&args, module, engine),
        "ir" => {
            let pipeline_flags = ["passes", "stats", "verify-each"];
            if pipeline_flags.iter().any(|f| args.flags.contains_key(*f)) {
                ir_pipeline_command(&args, &source, path)
            } else {
                print!("{module}");
                ExitCode::SUCCESS
            }
        }
        "run" => {
            let out = match execute(&module, engine, &RunConfig::default()) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("ipas: run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for v in out.outputs.as_ints() {
                println!("{v}");
            }
            for v in out.outputs.as_floats() {
                println!("{v}");
            }
            eprintln!(
                "[ipas] status {:?}, {} dynamic instructions",
                out.status, out.dynamic_insts
            );
            ExitCode::SUCCESS
        }
        "inject" => {
            let target = args.get("target", 0u64);
            let bit = args.get("bit", 0u32);
            let out = match execute(
                &module,
                engine,
                &RunConfig {
                    injection: Some(Injection::at_global_index(target, bit)),
                    max_insts: 500_000_000,
                    ..RunConfig::default()
                },
            ) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("ipas: injected run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "[ipas] injected bit {bit} at eligible result {target} (site {:?})",
                out.injected_site
            );
            eprintln!("[ipas] status {:?}", out.status);
            for v in out.outputs.as_ints() {
                println!("{v}");
            }
            for v in out.outputs.as_floats() {
                println!("{v}");
            }
            ExitCode::SUCCESS
        }
        "explain" => {
            let runs = args.get("runs", 400usize);
            let seed = args.get("seed", 2016u64);
            let fault_model = match parse_fault_model(&args) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let workload = match Workload::serial("cli", module, args.get("tolerance", 1e-9f64)) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ipas: golden run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("[ipas] training campaign: {runs} injections ...");
            let campaign = match run_campaign(
                &workload,
                &CampaignConfig {
                    runs,
                    seed,
                    threads: 0,
                    engine,
                    fault_model,
                },
            ) {
                Ok(campaign) => campaign,
                Err(err) => {
                    eprintln!("ipas: training campaign failed: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let data = ipas::core::build_training_set(
                &workload,
                &campaign.records,
                LabelKind::SocGenerating,
            );
            if data.num_positive() == 0 || data.num_positive() == data.len() {
                eprintln!("ipas: degenerate training labels; raise --runs");
                return ExitCode::FAILURE;
            }
            let model = match train_top_configs(&data, &GridOptions::quick(), 1)
                .into_iter()
                .next()
            {
                Some(model) => model,
                None => {
                    eprintln!("ipas: training produced no model (empty grid)");
                    return ExitCode::FAILURE;
                }
            };
            let extractor = ipas::analysis::FeatureExtractor::new(&workload.module);
            // Observed outcomes per site, for context next to predictions.
            let mut observed: std::collections::HashMap<_, [usize; 4]> =
                std::collections::HashMap::new();
            for rec in &campaign.records {
                let slot = match rec.outcome {
                    Outcome::Symptom => 0,
                    Outcome::Detected => 1,
                    Outcome::Masked => 2,
                    Outcome::Soc => 3,
                };
                observed.entry(rec.site).or_insert([0; 4])[slot] += 1;
            }
            println!(
                "{:<10} {:>5} {:<8} {:>8} {:>6} {:>6}",
                "function", "inst", "opcode", "protect?", "SOC", "hits"
            );
            for (fid, func) in workload.module.functions() {
                for bb in func.block_ids() {
                    for &id in func.block(bb).insts() {
                        if !ipas::core::duplicable(func.inst(id)) {
                            continue;
                        }
                        let fv = extractor.extract(fid, id);
                        let protect = model.predict_features(&fv);
                        let counts = observed.get(&(fid, id)).copied().unwrap_or([0; 4]);
                        let hits: usize = counts.iter().sum();
                        println!(
                            "{:<10} {:>5} {:<8} {:>8} {:>6} {:>6}",
                            func.name(),
                            id.index(),
                            func.inst(id).opcode_name(),
                            if protect { "yes" } else { "-" },
                            counts[3],
                            hits
                        );
                    }
                }
            }
            eprintln!(
                "[ipas] classifier C={:.1} gamma={:.4} F-score={:.3} (SOC column = observed SOC outcomes among `hits` sampled injections at that site)",
                model.score().params.c,
                model.score().params.gamma,
                model.score().f_score
            );
            ExitCode::SUCCESS
        }
        "train" => {
            let tolerance = args.get("tolerance", 1e-9f64);
            let runs = args.get("runs", 400usize);
            let top = args.get("top", 3usize);
            let seed = args.get("seed", 2016u64);
            let fault_model = match parse_fault_model(&args) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let policy_name = args
                .flags
                .get("policy")
                .cloned()
                .unwrap_or_else(|| "ipas".into());
            let label = match policy_name.as_str() {
                "ipas" => LabelKind::SocGenerating,
                "baseline" => LabelKind::SymptomGenerating,
                other => {
                    eprintln!("ipas: cannot train policy `{other}` (expected ipas|baseline)");
                    return ExitCode::FAILURE;
                }
            };
            let store = match store_from_env() {
                Ok(s) => s,
                Err(code) => return code,
            };
            let save_as = args.flags.get("save-model");
            if save_as.is_some() && store.is_none() {
                eprintln!("ipas: --save-model needs IPAS_STORE_DIR to point at an artifact store");
                return ExitCode::FAILURE;
            }
            let adaptive = args.flags.contains_key("adaptive");
            if adaptive && save_as.is_some() {
                // Adaptive data collection bypasses the memoized stages
                // (its sampling depends on live labels), so there is no
                // stored artifact for the registry to reference.
                eprintln!("ipas: --save-model is not supported with --adaptive yet");
                return ExitCode::FAILURE;
            }

            let workload = match Workload::serial("cli", module, tolerance) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ipas: golden run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let config = CampaignConfig {
                runs,
                seed,
                threads: 0,
                engine,
                fault_model,
            };
            let set = if adaptive {
                let params = adaptive_params(&args, runs);
                eprintln!(
                    "[ipas] training campaign: adaptive, budget {runs} injections \
                     in rounds of {} ...",
                    params.round_runs
                );
                match run_campaign_adaptive(
                    &workload,
                    &config,
                    &CampaignOptions::default(),
                    &params,
                ) {
                    Ok(out) => {
                        print_rounds(&out, runs);
                        training_set_artifact(&workload, &out.result)
                    }
                    Err(e) => {
                        eprintln!("ipas: training campaign failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match training_stage(store.as_ref(), &workload, &config) {
                    Ok(set) => set,
                    Err(e) => {
                        eprintln!("ipas: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let campaign_fp = campaign_fingerprint(&workload.module, &config);
            // Adaptive training sets are sampling-dependent, so they
            // must not share the uniform campaign's memoization keys.
            let model_store = if adaptive { None } else { store.as_ref() };
            let (models, best_key) = match classifier_stage(
                model_store,
                &set,
                &campaign_fp,
                label,
                &GridOptions::quick(),
                top,
            ) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("ipas: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(best) = models.first() else {
                eprintln!("ipas: training produced no model (empty grid)");
                return ExitCode::FAILURE;
            };
            eprintln!(
                "[ipas] best config: C={:.1} gamma={:.4} F-score={:.3} ({} support vectors)",
                best.score().params.c,
                best.score().params.gamma,
                best.score().f_score,
                best.svm().num_support_vectors()
            );
            if let (Some(name), Some(store)) = (save_as, &store) {
                let note = format!("{policy_name} model for {path}");
                if let Err(e) = store.registry().register(
                    name,
                    ipas::store::ArtifactKind::TrainedModel,
                    &best_key,
                    &note,
                ) {
                    eprintln!("ipas: cannot register model `{name}`: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[ipas] model saved as `{name}` -> {}", best_key.short());
            }
            ExitCode::SUCCESS
        }
        "protect" => {
            let tolerance = args.get("tolerance", 1e-9f64);
            let runs = args.get("runs", 400usize);
            let eval_runs = args.get("eval", 192usize);
            let top = args.get("top", 3usize);
            let seed = args.get("seed", 2016u64);
            let fault_model = match parse_fault_model(&args) {
                Ok(m) => m,
                Err(code) => return code,
            };
            let policy_name = args
                .flags
                .get("policy")
                .cloned()
                .unwrap_or_else(|| "ipas".into());
            let store = match store_from_env() {
                Ok(s) => s,
                Err(code) => return code,
            };
            if let Some(store) = &store {
                eprintln!("[ipas] artifact store: {}", store.root().display());
            }

            let workload = match Workload::serial("cli", module, tolerance) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ipas: golden run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "[ipas] golden run: {} dynamic insts, {} eligible fault sites",
                workload.nominal_insts, workload.eligible_results
            );

            // Steps 2-3: campaign + classifier (not needed for `full`).
            let (policy, model_key) = match policy_name.as_str() {
                "full" => (ProtectionPolicy::FullDuplication, None),
                name @ ("ipas" | "baseline") => {
                    let label = if name == "ipas" {
                        LabelKind::SocGenerating
                    } else {
                        LabelKind::SymptomGenerating
                    };
                    let (best, key) = if let Some(spec) = args.flags.get("model") {
                        let Some(store) = &store else {
                            eprintln!(
                                "ipas: --model needs IPAS_STORE_DIR to point at an artifact store"
                            );
                            return ExitCode::FAILURE;
                        };
                        match resolve_model(store, spec) {
                            Ok((key, model)) => {
                                eprintln!("[ipas] store: using model `{spec}` ({})", key.short());
                                (model, key)
                            }
                            Err(e) => {
                                eprintln!("ipas: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        let config = CampaignConfig {
                            runs,
                            seed,
                            threads: 0,
                            engine,
                            fault_model,
                        };
                        let set = match training_stage(store.as_ref(), &workload, &config) {
                            Ok(set) => set,
                            Err(e) => {
                                eprintln!("ipas: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        let campaign_fp = campaign_fingerprint(&workload.module, &config);
                        let (models, best_key) = match classifier_stage(
                            store.as_ref(),
                            &set,
                            &campaign_fp,
                            label,
                            &GridOptions::quick(),
                            top,
                        ) {
                            Ok(v) => v,
                            Err(e) => {
                                eprintln!("ipas: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        let Some(best) = models.into_iter().next() else {
                            eprintln!("ipas: training produced no model (empty grid)");
                            return ExitCode::FAILURE;
                        };
                        (best, best_key)
                    };
                    eprintln!(
                        "[ipas] best config: C={:.1} gamma={:.4} F-score={:.3}",
                        best.score().params.c,
                        best.score().params.gamma,
                        best.score().f_score
                    );
                    let policy = if name == "ipas" {
                        ProtectionPolicy::Ipas(best)
                    } else {
                        ProtectionPolicy::Baseline(best)
                    };
                    (policy, Some(key))
                }
                other => {
                    eprintln!("ipas: unknown policy `{other}`");
                    return ExitCode::FAILURE;
                }
            };

            // Step 4: protect (memoized: a warm run re-emits the stored,
            // byte-identical module without re-running duplication).
            let (protected, stats, dup_outcome) = match memoized_protect(
                store.as_ref(),
                &workload.module,
                &policy,
                model_key.as_ref(),
            ) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("ipas: duplication failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if store.is_some() {
                eprintln!("[ipas] store: duplication stage {}", dup_outcome.label());
            }
            eprintln!(
                "[ipas] duplicated {}/{} instructions, {} checks",
                stats.duplicated, stats.considered, stats.checks
            );

            // Evaluation campaigns (memoized as summaries).
            let eval = CampaignConfig {
                runs: eval_runs,
                seed: seed ^ 0xE7A1,
                threads: 0,
                engine,
                fault_model,
            };
            if store.is_some() {
                let unprot = match eval_stage(
                    store.as_ref(),
                    &workload,
                    &workload.module,
                    "unprotected",
                    &eval,
                ) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("ipas: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let variant = match eval_stage(
                    store.as_ref(),
                    &workload,
                    &protected,
                    policy.label(),
                    &eval,
                ) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("ipas: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let unprot_soc = unprot.soc_pct();
                let soc = variant.soc_pct();
                let reduction = if unprot_soc > 0.0 {
                    (unprot_soc - soc) / unprot_soc * 100.0
                } else {
                    0.0
                };
                let slowdown = variant.nominal_insts as f64 / workload.nominal_insts as f64;
                eprintln!(
                    "[ipas] SOC {unprot_soc:.2}% -> {soc:.2}% ({reduction:.1}% reduction) at {slowdown:.2}x slowdown"
                );
            } else {
                let journal_dir =
                    std::env::var_os("IPAS_JOURNAL_DIR").map(std::path::PathBuf::from);
                let unprot = match run_campaign(&workload, &eval) {
                    Ok(unprot) => unprot,
                    Err(err) => {
                        eprintln!("ipas: unprotected campaign failed: {err}");
                        return ExitCode::FAILURE;
                    }
                };
                let unprot_soc = unprot.fraction(Outcome::Soc) * 100.0;
                match evaluate_variant(
                    &workload,
                    protected.clone(),
                    policy.label(),
                    stats,
                    Some(unprot_soc),
                    &eval,
                    journal_dir.as_deref(),
                ) {
                    Ok(v) => {
                        eprintln!(
                            "[ipas] SOC {unprot_soc:.2}% -> {:.2}% ({:.1}% reduction) at {:.2}x slowdown",
                            v.soc_pct, v.soc_reduction_pct, v.slowdown
                        );
                    }
                    Err(e) => {
                        eprintln!("ipas: evaluation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }

            let out_path = args
                .flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{path}.protected.ir"));
            if let Err(e) = std::fs::write(&out_path, protected.to_text()) {
                eprintln!("ipas: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[ipas] protected IR written to {out_path}");
            ExitCode::SUCCESS
        }
        _ => unreachable!("subcommand validated above"),
    }
}

//! `ipas` — command-line driver for the IPAS workflow.
//!
//! Protects a SciL program end to end: compiles it, runs the
//! fault-injection training campaign against a golden-output
//! verification routine, trains the classifier, applies selective
//! duplication, and writes the protected IR.
//!
//! ```text
//! USAGE:
//!   ipas protect <file.scil> [--runs N] [--eval N] [--top N]
//!                [--tolerance T] [--seed S] [--out FILE] [--policy P]
//!   ipas run <file.scil>            # compile + execute, print outputs
//!   ipas ir <file.scil>             # compile + print optimized IR
//!   ipas inject <file.scil> --target K --bit B   # single fault run
//!   ipas explain <file.scil> [--runs N]    # per-instruction decisions
//! ```
//!
//! `--policy` selects `ipas` (default), `full`, or `baseline`.
//! The program's verified output stream is whatever it emits through
//! `output_i`/`output_f`; verification compares against the fault-free
//! run with float tolerance `--tolerance` (default 1e-9).

use std::process::ExitCode;

use ipas::core::{
    build_training_set, evaluate_variant, train_top_configs, LabelKind, ProtectionPolicy,
};
use ipas::faultsim::{run_campaign, CampaignConfig, Outcome, Workload};
use ipas::interp::{Injection, Machine, RunConfig};
use ipas::svm::GridOptions;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipas <protect|run|ir|inject> <file.scil> [--runs N] [--eval N] [--top N] \
         [--tolerance T] [--seed S] [--out FILE] [--policy ipas|full|baseline] \
         [--target K] [--bit B]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = Args::parse();
    let (Some(cmd), Some(path)) = (args.positional.first(), args.positional.get(1)) else {
        return usage();
    };
    if !matches!(
        cmd.as_str(),
        "protect" | "run" | "ir" | "inject" | "explain"
    ) {
        return usage();
    }
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipas: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let module = match ipas::lang::compile(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ipas: {path}:{e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "ir" => {
            print!("{module}");
            ExitCode::SUCCESS
        }
        "run" => {
            let out = Machine::new(&module)
                .run(&RunConfig::default())
                .expect("main() exists in compiled modules");
            for v in out.outputs.as_ints() {
                println!("{v}");
            }
            for v in out.outputs.as_floats() {
                println!("{v}");
            }
            eprintln!(
                "[ipas] status {:?}, {} dynamic instructions",
                out.status, out.dynamic_insts
            );
            ExitCode::SUCCESS
        }
        "inject" => {
            let target = args.get("target", 0u64);
            let bit = args.get("bit", 0u32);
            let out = Machine::new(&module)
                .run(&RunConfig {
                    injection: Some(Injection::at_global_index(target, bit)),
                    max_insts: 500_000_000,
                    ..RunConfig::default()
                })
                .expect("main() exists in compiled modules");
            eprintln!(
                "[ipas] injected bit {bit} at eligible result {target} (site {:?})",
                out.injected_site
            );
            eprintln!("[ipas] status {:?}", out.status);
            for v in out.outputs.as_ints() {
                println!("{v}");
            }
            for v in out.outputs.as_floats() {
                println!("{v}");
            }
            ExitCode::SUCCESS
        }
        "explain" => {
            let runs = args.get("runs", 400usize);
            let seed = args.get("seed", 2016u64);
            let workload = match Workload::serial("cli", module, args.get("tolerance", 1e-9f64)) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ipas: golden run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("[ipas] training campaign: {runs} injections ...");
            let campaign = match run_campaign(
                &workload,
                &CampaignConfig {
                    runs,
                    seed,
                    threads: 0,
                },
            ) {
                Ok(campaign) => campaign,
                Err(err) => {
                    eprintln!("ipas: training campaign failed: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let data = build_training_set(&workload, &campaign.records, LabelKind::SocGenerating);
            if data.num_positive() == 0 || data.num_positive() == data.len() {
                eprintln!("ipas: degenerate training labels; raise --runs");
                return ExitCode::FAILURE;
            }
            let model = train_top_configs(&data, &GridOptions::quick(), 1)
                .into_iter()
                .next()
                .expect("grid is non-empty");
            let extractor = ipas::analysis::FeatureExtractor::new(&workload.module);
            // Observed outcomes per site, for context next to predictions.
            let mut observed: std::collections::HashMap<_, [usize; 4]> =
                std::collections::HashMap::new();
            for rec in &campaign.records {
                let slot = match rec.outcome {
                    Outcome::Symptom => 0,
                    Outcome::Detected => 1,
                    Outcome::Masked => 2,
                    Outcome::Soc => 3,
                };
                observed.entry(rec.site).or_insert([0; 4])[slot] += 1;
            }
            println!(
                "{:<10} {:>5} {:<8} {:>8} {:>6} {:>6}",
                "function", "inst", "opcode", "protect?", "SOC", "hits"
            );
            for (fid, func) in workload.module.functions() {
                for bb in func.block_ids() {
                    for &id in func.block(bb).insts() {
                        if !ipas::core::duplicable(func.inst(id)) {
                            continue;
                        }
                        let fv = extractor.extract(fid, id);
                        let protect = model.predict_features(&fv);
                        let counts = observed.get(&(fid, id)).copied().unwrap_or([0; 4]);
                        let hits: usize = counts.iter().sum();
                        println!(
                            "{:<10} {:>5} {:<8} {:>8} {:>6} {:>6}",
                            func.name(),
                            id.index(),
                            func.inst(id).opcode_name(),
                            if protect { "yes" } else { "-" },
                            counts[3],
                            hits
                        );
                    }
                }
            }
            eprintln!(
                "[ipas] classifier C={:.1} gamma={:.4} F-score={:.3} (SOC column = observed SOC outcomes among `hits` sampled injections at that site)",
                model.score().params.c,
                model.score().params.gamma,
                model.score().f_score
            );
            ExitCode::SUCCESS
        }
        "protect" => {
            let tolerance = args.get("tolerance", 1e-9f64);
            let runs = args.get("runs", 400usize);
            let eval_runs = args.get("eval", 192usize);
            let top = args.get("top", 3usize);
            let seed = args.get("seed", 2016u64);
            let policy_name = args
                .flags
                .get("policy")
                .cloned()
                .unwrap_or_else(|| "ipas".into());

            let workload = match Workload::serial("cli", module, tolerance) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ipas: golden run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "[ipas] golden run: {} dynamic insts, {} eligible fault sites",
                workload.nominal_insts, workload.eligible_results
            );

            // Steps 2-3: campaign + classifier (not needed for `full`).
            let policy = match policy_name.as_str() {
                "full" => ProtectionPolicy::FullDuplication,
                name @ ("ipas" | "baseline") => {
                    eprintln!("[ipas] training campaign: {runs} injections ...");
                    let campaign = match run_campaign(
                        &workload,
                        &CampaignConfig {
                            runs,
                            seed,
                            threads: 0,
                        },
                    ) {
                        Ok(campaign) => campaign,
                        Err(err) => {
                            eprintln!("ipas: training campaign failed: {err}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let label = if name == "ipas" {
                        LabelKind::SocGenerating
                    } else {
                        LabelKind::SymptomGenerating
                    };
                    let data = build_training_set(&workload, &campaign.records, label);
                    eprintln!(
                        "[ipas] training set: {} samples, {:.1}% positive",
                        data.len(),
                        data.positive_fraction() * 100.0
                    );
                    if data.num_positive() == 0 || data.num_positive() == data.len() {
                        eprintln!("ipas: degenerate training labels; raise --runs");
                        return ExitCode::FAILURE;
                    }
                    let models = train_top_configs(&data, &GridOptions::quick(), top);
                    let best = models.into_iter().next().expect("grid is non-empty");
                    eprintln!(
                        "[ipas] best config: C={:.1} gamma={:.4} F-score={:.3}",
                        best.score().params.c,
                        best.score().params.gamma,
                        best.score().f_score
                    );
                    if name == "ipas" {
                        ProtectionPolicy::Ipas(best)
                    } else {
                        ProtectionPolicy::Baseline(best)
                    }
                }
                other => {
                    eprintln!("ipas: unknown policy `{other}`");
                    return ExitCode::FAILURE;
                }
            };

            // Step 4: protect and evaluate.
            let (protected, stats) = policy.apply(&workload.module);
            eprintln!(
                "[ipas] duplicated {}/{} instructions, {} checks",
                stats.duplicated, stats.considered, stats.checks
            );
            let eval = CampaignConfig {
                runs: eval_runs,
                seed: seed ^ 0xE7A1,
                threads: 0,
            };
            let journal_dir = std::env::var_os("IPAS_JOURNAL_DIR").map(std::path::PathBuf::from);
            let unprot = match run_campaign(&workload, &eval) {
                Ok(unprot) => unprot,
                Err(err) => {
                    eprintln!("ipas: unprotected campaign failed: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let unprot_soc = unprot.fraction(Outcome::Soc) * 100.0;
            match evaluate_variant(
                &workload,
                protected.clone(),
                policy.label(),
                stats,
                Some(unprot_soc),
                &eval,
                journal_dir.as_deref(),
            ) {
                Ok(v) => {
                    eprintln!(
                        "[ipas] SOC {unprot_soc:.2}% -> {:.2}% ({:.1}% reduction) at {:.2}x slowdown",
                        v.soc_pct, v.soc_reduction_pct, v.slowdown
                    );
                }
                Err(e) => {
                    eprintln!("ipas: evaluation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }

            let out_path = args
                .flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{path}.protected.ir"));
            if let Err(e) = std::fs::write(&out_path, protected.to_text()) {
                eprintln!("ipas: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[ipas] protected IR written to {out_path}");
            ExitCode::SUCCESS
        }
        _ => unreachable!("subcommand validated above"),
    }
}

//! Facade crate for the IPAS reproduction workspace.
//!
//! Re-exports every sub-crate under a short name so that examples and
//! integration tests can depend on a single crate. See the repository
//! README for an overview and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use ipas_analysis as analysis;
pub use ipas_core as core;
pub use ipas_faultsim as faultsim;
pub use ipas_fuzz as fuzz;
pub use ipas_interp as interp;
pub use ipas_ir as ir;
pub use ipas_lang as lang;
pub use ipas_mpisim as mpisim;
pub use ipas_serve as serve;
pub use ipas_store as store;
pub use ipas_svm as svm;
pub use ipas_workloads as workloads;

//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// This stand-in keeps only the sampling half of proptest's contract;
/// there is no shrinking tree. Combinators all return a
/// [`BoxedStrategy`], which keeps signatures simple and matches how the
/// workspace's tests compose strategies.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        U: Debug,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.sample(rng))))
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.sample(rng)).sample(rng)))
    }

    /// Recursive generation: `self` is the leaf case and `f` builds the
    /// branch case from a strategy for the sub-trees. `depth` bounds the
    /// recursion; the `_desired_size` and `_expected_branch_size` hints
    /// are accepted for signature compatibility and ignored.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value> + 'static,
    {
        fn at_depth<T: Debug + 'static>(
            leaf: BoxedStrategy<T>,
            f: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
            depth: u32,
        ) -> BoxedStrategy<T> {
            if depth == 0 {
                return leaf;
            }
            BoxedStrategy(Rc::new(move |rng| {
                // Terminate early 1 time in 4 so sampled trees vary in
                // size instead of always reaching full depth.
                if rng.below(4) == 0 {
                    leaf.sample(rng)
                } else {
                    f(at_depth(leaf.clone(), f.clone(), depth - 1)).sample(rng)
                }
            }))
        }
        at_depth(self.boxed(), Rc::new(f), depth)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies.
pub fn one_of<T: Debug + 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy(Rc::new(move |rng| {
        options[rng.below(options.len() as u64) as usize].sample(rng)
    }))
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Values generatable by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range values; NaN/Inf-specific tests should opt
        // in explicitly rather than receive them by surprise.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// An unconstrained strategy for `T`, mirroring `proptest::any`.
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy(Rc::new(|rng| T::arbitrary(rng)))
}

/// String strategies from regex-like patterns (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i64..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_flat_map(|v| 0u32..(v + 1));
        for _ in 0..200 {
            assert!(s.sample(&mut r) < 20);
        }
    }

    #[test]
    fn one_of_reaches_every_option() {
        let mut r = rng();
        let s = one_of(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(5, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into()))
            });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = s.sample(&mut r);
            max_seen = max_seen.max(depth(&t));
            assert!(depth(&t) <= 5);
        }
        assert!(max_seen >= 2, "recursion should sometimes nest: {max_seen}");
    }
}

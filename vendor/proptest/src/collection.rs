//! Collection strategies.

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::{BoxedStrategy, Strategy};

/// A length specification for [`vec`]: either exact or a half-open
/// range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Debug,
{
    let size = size.into();
    BoxedStrategy(std::rc::Rc::new(move |rng| {
        let span = (size.hi - size.lo) as u64;
        let len = size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| element.sample(rng)).collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn vec_respects_length_spec() {
        let mut rng = TestRng::from_seed(4);
        let exact = vec(0u8..10, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
        let ranged = vec(0u8..10, 2usize..5);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}

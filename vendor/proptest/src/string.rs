//! String generation from a small regex subset.
//!
//! Supports what the workspace's tests use: literal characters, escapes
//! (`\n`, `\t`, `\\`), character classes with ranges (`[ -~\n]`), and
//! the quantifiers `{n}`, `{lo,hi}`, `?`, `*`, `+` (the unbounded forms
//! are capped at 16 repetitions). Anything fancier panics with a clear
//! message so the gap is visible instead of silently mis-generating.

use crate::TestRng;

#[derive(Debug)]
enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    lo: u32,
    hi: u32, // inclusive
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Vec<char> = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = chars.next().unwrap_or_else(|| {
                                panic!("dangling escape in pattern `{pattern}`")
                            });
                            pending.push(unescape(e));
                        }
                        '-' => {
                            let lo = pending.pop().unwrap_or_else(|| {
                                panic!("range without start in pattern `{pattern}`")
                            });
                            let hi = match chars.next() {
                                Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in pattern `{pattern}`")
                                })),
                                Some(']') => {
                                    // Trailing '-' is a literal.
                                    pending.push(lo);
                                    pending.push('-');
                                    break;
                                }
                                Some(h) => h,
                                None => panic!("unterminated class in pattern `{pattern}`"),
                            };
                            assert!(lo <= hi, "inverted range in pattern `{pattern}`");
                            ranges.push((lo, hi));
                        }
                        other => pending.push(other),
                    }
                }
                ranges.extend(pending.into_iter().map(|c| (c, c)));
                assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                Atom::Class(ranges)
            }
            '\\' => {
                Atom::Lit(unescape(chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in pattern `{pattern}`")
                })))
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("regex feature `{c}` is not supported by the vendored proptest stand-in")
            }
            other => Atom::Lit(other),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let parse_u32 = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .unwrap_or_else(|_| panic!("bad repeat `{{{spec}}}` in `{pattern}`"))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse_u32(lo), parse_u32(hi)),
                    None => {
                        let n = parse_u32(&spec);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted repeat in pattern `{pattern}`");
        pieces.push(Piece { atom, lo, hi });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("class ranges stay within valid scalar values");
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
    }
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.hi - piece.lo + 1) as u64;
        let count = piece.lo + rng.below(span) as u32;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_escape() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..300 {
            let s = sample_pattern("[ -~\\n]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
        let s = sample_pattern("a{3}b?", &mut rng);
        assert!(s.starts_with("aaa") && s.len() <= 4);
        for _ in 0..50 {
            let s = sample_pattern("x+", &mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
        }
    }
}

//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The reproduction builds in offline containers where crates.io is not
//! reachable, so this crate reimplements the slice of proptest the
//! workspace's tests use: the [`Strategy`] trait with `prop_map`,
//! `prop_flat_map` and `prop_recursive`, range/tuple/`Just`/vec/string
//! strategies, `prop_oneof!`, the `proptest!` macro, and the
//! `prop_assert*` family. Sampling is deterministic per test (seeded
//! from the test name), with no shrinking: a failing case panics with
//! the sampled inputs so it can be reproduced and minimized by hand.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
mod string;

use std::fmt;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Run-time configuration of a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The input was rejected (counts against no budget here).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds a generator from an arbitrary seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seeds a generator from a test name (stable across runs so
    /// failures are reproducible).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next word of the stream (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The property-test runner macro.
///
/// Mirrors upstream usage:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0i64..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __sampled = ( $( $crate::Strategy::sample(&($strat), &mut __rng), )+ );
                    let __desc = format!("{:?}", __sampled);
                    let ( $($arg,)+ ) = __sampled;
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__reason)) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                                stringify!($name),
                                __case + 1,
                                __config.cases,
                                __reason,
                                __desc
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Chooses uniformly among the listed strategies (all must share a
/// value type). Weights are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), __l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

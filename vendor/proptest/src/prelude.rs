//! The usual glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    TestCaseError, TestRng,
};

/// Alias of the crate root, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

//! Vendored, dependency-free stand-in for the `criterion` harness.
//!
//! The reproduction builds in offline containers where crates.io is not
//! reachable, so this crate implements the slice of criterion's API the
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with [`BenchmarkGroup::sample_size`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical analysis it runs a fixed warm-up plus
//! `sample_size` timed samples and reports min/median/max per sample.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup between measured runs. This
/// stand-in times each batch individually regardless of variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state; setup cost is negligible.
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// Each batch is a single routine call.
    PerIteration,
}

/// Collects timing samples for one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, running it once per sample after one warm-up
    /// call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<40} min {:>12.3?}  median {:>12.3?}  max {:>12.3?}  ({} samples)",
        sorted[0],
        median,
        sorted[sorted.len() - 1],
        sorted.len()
    );
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // A handful of samples keeps `cargo bench` fast while still
        // exposing gross regressions; criterion's default of 100 is
        // overkill without its statistics.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs and reports a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = name.to_string();
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        report(&name, &bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&full, &bencher.samples);
        self
    }

    /// Ends the group. (No-op here; criterion emits summary output.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warm-up + samples

        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}

//! Sequence helpers.

use crate::RngCore;

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Shuffles the slice with the Fisher–Yates algorithm.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

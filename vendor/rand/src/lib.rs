//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The reproduction builds in offline containers where crates.io is not
//! reachable, so this crate provides exactly the surface the workspace
//! uses — `StdRng::seed_from_u64`, `Rng::gen_range`/`gen_bool`, and
//! `SliceRandom::shuffle` — backed by the xoshiro256** generator with
//! splitmix64 seeding. Streams are deterministic for a given seed (the
//! property the campaign and dataset code relies on) but intentionally
//! do **not** match upstream `rand`'s ChaCha streams.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a word to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded sampling via 128-bit multiply-shift.
pub(crate) fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded(rng, span);
                ((self.start as i128) + off as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_in(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5);
    }
}

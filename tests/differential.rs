//! Differential oracle for the two execution engines.
//!
//! The pre-decoded engine ([`ipas::interp::CompiledMachine`]) must be
//! *bit-identical* to the tree-walking reference ([`ipas::interp::Machine`])
//! on every observable: outputs, console lines, final status (including
//! traps), dynamic instruction counts, eligible-result counts, and
//! injection bookkeeping. This suite drives both engines over all five
//! SciL workloads — fault-free and under injection sweeps — and over
//! proptest-generated programs, and asserts full equality each time.
//!
//! The compiled machine is deliberately *reused* across runs (as the
//! campaign scheduler reuses it), so any state leaking between runs
//! shows up here as a divergence from the freshly-built reference.

use proptest::prelude::*;

use ipas::interp::{
    CompiledMachine, CompiledProgram, Engine, Injection, Machine, RtVal, RunConfig, RunOutput,
};
use ipas::ir::Module;
use ipas::workloads::Kind;

/// Asserts every observable field of two runs is identical.
fn assert_identical(label: &str, reference: &RunOutput, compiled: &RunOutput) {
    assert_eq!(reference.status, compiled.status, "{label}: status");
    assert_eq!(
        reference.dynamic_insts, compiled.dynamic_insts,
        "{label}: dynamic instruction count"
    );
    assert_eq!(
        reference.eligible_results, compiled.eligible_results,
        "{label}: eligible result count"
    );
    assert_eq!(
        reference.outputs.as_ints(),
        compiled.outputs.as_ints(),
        "{label}: integer outputs"
    );
    assert_eq!(
        reference.outputs.as_floats().to_bits_vec(),
        compiled.outputs.as_floats().to_bits_vec(),
        "{label}: float outputs (bitwise)"
    );
    assert_eq!(reference.console, compiled.console, "{label}: console");
    assert_eq!(
        reference.injected_site, compiled.injected_site,
        "{label}: injected site"
    );
    assert_eq!(
        reference.injected_at_inst, compiled.injected_at_inst,
        "{label}: injection instant"
    );
    assert_eq!(
        reference.site_profile, compiled.site_profile,
        "{label}: site profile"
    );
}

/// Bitwise view of a float vec so NaN payloads and signed zeros count.
trait BitsVec {
    fn to_bits_vec(&self) -> Vec<u64>;
}

impl BitsVec for Vec<f64> {
    fn to_bits_vec(&self) -> Vec<u64> {
        self.iter().map(|f| f.to_bits()).collect()
    }
}

/// Runs `config` on a fresh reference machine and on `compiled`
/// (reused), asserting identity; returns the reference output.
fn run_both(
    label: &str,
    module: &Module,
    compiled: &mut CompiledMachine<'_>,
    config: &RunConfig,
) -> RunOutput {
    let reference = Machine::new(module).run(config).expect("reference runs");
    let fast = compiled.run(config).expect("compiled runs");
    assert_identical(label, &reference, &fast);
    reference
}

/// Fault-free equivalence plus an injection sweep over one module: a
/// spread of target indices across the eligible-result space, each at a
/// handful of bit positions covering low mantissa, high mantissa,
/// exponent, and sign ranges.
fn differential_sweep(label: &str, module: &Module, args: Vec<RtVal>) {
    let program = CompiledProgram::compile(module);
    let mut machine = CompiledMachine::new(&program);
    let base = RunConfig {
        args,
        ..RunConfig::default()
    };
    let clean = run_both(&format!("{label}/clean"), module, &mut machine, &base);
    assert!(
        matches!(clean.status, ipas::interp::RunStatus::Completed(_)),
        "{label}: fault-free run completes"
    );
    // An injection can corrupt a loop bound; bound the hang exactly as
    // campaigns do, so both engines hit the same budget stop.
    let budget = RunConfig::budget_from_nominal(clean.dynamic_insts);
    let eligible = clean.eligible_results.max(1);
    for step in 0..6u64 {
        let target = step * eligible / 6;
        for bit in [0u32, 17, 42, 62] {
            run_both(
                &format!("{label}/inject t={target} b={bit}"),
                module,
                &mut machine,
                &RunConfig {
                    injection: Some(Injection::at_global_index(target, bit)),
                    max_insts: budget,
                    ..base.clone()
                },
            );
        }
    }
}

#[test]
fn engines_agree_on_all_workloads() {
    for kind in Kind::ALL {
        let workload = kind.build(kind.base_input()).expect("workload builds");
        differential_sweep(kind.name(), &workload.module, workload.args.clone());
    }
}

#[test]
fn engines_agree_on_workload_input_ladder() {
    // Second-smallest ladder input exercises different trip counts than
    // the base input without inflating the suite's runtime.
    for kind in Kind::ALL {
        let input = kind.input_ladder()[1];
        let workload = kind.build(input).expect("workload builds");
        let program = CompiledProgram::compile(&workload.module);
        let mut machine = CompiledMachine::new(&program);
        run_both(
            &format!("{}@{input}", kind.name()),
            &workload.module,
            &mut machine,
            &RunConfig {
                args: workload.args.clone(),
                ..RunConfig::default()
            },
        );
    }
}

#[test]
fn engines_agree_on_site_profiles() {
    for kind in Kind::ALL {
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let program = CompiledProgram::compile(&workload.module);
        let mut machine = CompiledMachine::new(&program);
        run_both(
            &format!("{}/profile", kind.name()),
            &workload.module,
            &mut machine,
            &RunConfig {
                args: workload.args.clone(),
                profile_sites: true,
                ..RunConfig::default()
            },
        );
    }
}

#[test]
fn engine_knob_round_trips_through_strings() {
    for engine in Engine::ALL {
        let parsed: Engine = engine.label().parse().expect("label parses back");
        assert_eq!(parsed, engine);
    }
}

/// The proptest template: loops, arrays, GEPs, casts, calls, float and
/// integer arithmetic, conditionals — the same surface the pass-
/// correctness suite uses, compiled optimized so the IR exercises the
/// full instruction set the engines must agree on.
fn program(a: i64, b: i64, c: i64, scale: i64, n: u8) -> String {
    let n = (n % 24) + 2;
    format!(
        r#"
fn mix(v: float, k: int) -> float {{
    if (k % 3 == 0) {{ return v * 1.5 + 0.25; }}
    else if (k % 3 == 1) {{ return sqrt(fabs(v) + 1.0); }}
    return v - itof(k) * 0.125;
}}
fn main(x: int) -> int {{
    let n: int = {n};
    let arr: [float] = new_float(n);
    let acc: int = x;
    for (let i: int = 0; i < n; i = i + 1) {{
        arr[i] = itof(i * {a} + {b}) * 0.5;
    }}
    let facc: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) {{
        facc = facc + mix(arr[i], i + {c});
        if (i % 2 == 0) {{
            acc = acc + ftoi(facc) % 97;
        }} else {{
            acc = acc - i * {scale};
        }}
    }}
    output_i(acc);
    output_f(facc);
    free_arr(arr);
    return acc;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated programs agree fault-free and under a generated
    /// injection, on both the optimized and unoptimized module (the
    /// latter keeps phi-heavy, alloca-heavy IR in the mix that the
    /// optimizer would otherwise clean away).
    #[test]
    fn engines_agree_on_generated_programs(
        a in -20i64..20, b in -20i64..20, c in 0i64..10, scale in -5i64..5, n in any::<u8>(),
        x in -50i64..50, target in any::<u64>(), bit in 0u32..64
    ) {
        let src = program(a, b, c, scale, n);
        let optimized = ipas::lang::compile(&src).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let unoptimized = ipas::lang::compile_unoptimized(&src, "t")
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (tag, module) in [("opt", &optimized), ("unopt", &unoptimized)] {
            let compiled = CompiledProgram::compile(module);
            let mut machine = CompiledMachine::new(&compiled);
            let base = RunConfig {
                args: vec![RtVal::I64(x)],
                ..RunConfig::default()
            };
            let clean = run_both(&format!("gen/{tag}/clean"), module, &mut machine, &base);
            let eligible = clean.eligible_results.max(1);
            run_both(
                &format!("gen/{tag}/inject"),
                module,
                &mut machine,
                &RunConfig {
                    injection: Some(Injection::at_global_index(target % eligible, bit)),
                    max_insts: RunConfig::budget_from_nominal(clean.dynamic_insts),
                    ..base
                },
            );
        }
    }
}

//! End-to-end tests of the `ipas` CLI binary, driven as a user would.

use std::io::Write as _;
use std::process::Command;

fn ipas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ipas"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ipas-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const KERNEL: &str = r#"
fn main() -> int {
    let n: int = 12;
    let a: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) { a[i] = itof(i) * 0.5; }
    let s: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + a[i] * a[i]; }
    output_f(s);
    free_arr(a);
    return 0;
}
"#;

#[test]
fn run_prints_outputs() {
    let path = write_temp("run.scil", KERNEL);
    let out = ipas().arg("run").arg(&path).output().expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // sum of (i/2)^2 for i < 12 = 126.5
    assert_eq!(stdout.trim(), "126.5");
}

#[test]
fn ir_emits_parseable_module() {
    let path = write_temp("ir.scil", KERNEL);
    let out = ipas().arg("ir").arg(&path).output().expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let module = ipas::ir::parser::parse_module(&text).expect("CLI IR parses back");
    ipas::ir::verify::verify_module(&module).expect("CLI IR verifies");
}

#[test]
fn inject_reports_site_and_status() {
    let path = write_temp("inject.scil", KERNEL);
    let out = ipas()
        .args(["inject"])
        .arg(&path)
        .args(["--target", "3", "--bit", "55"])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected bit 55"), "{stderr}");
    assert!(stderr.contains("status"), "{stderr}");
}

#[test]
fn protect_writes_checked_ir_and_reports_reduction() {
    let path = write_temp("protect.scil", KERNEL);
    let out_path = std::env::temp_dir().join("ipas-cli-tests/protect.out.ir");
    let out = ipas()
        .arg("protect")
        .arg(&path)
        .args(["--runs", "120", "--eval", "48", "--policy", "full"])
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("duplicated"), "{stderr}");
    assert!(stderr.contains("slowdown"), "{stderr}");
    let ir = std::fs::read_to_string(&out_path).expect("protected IR written");
    assert!(ir.contains("__ipas_check"), "protection inserted checks");
    let module = ipas::ir::parser::parse_module(&ir).expect("parses");
    ipas::ir::verify::verify_module(&module).expect("verifies");
}

#[test]
fn missing_file_fails_with_message() {
    let out = ipas()
        .args(["run", "/nonexistent.scil"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn syntax_error_reports_position() {
    let path = write_temp("bad.scil", "fn main() -> int {\n  return @;\n}\n");
    let out = ipas().arg("run").arg(&path).output().expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2:10"), "{stderr}");
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = ipas()
        .args(["frobnicate", "x.scil"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_policy_fails() {
    let path = write_temp("policy.scil", KERNEL);
    let out = ipas()
        .arg("protect")
        .arg(&path)
        .args(["--policy", "wat"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn explain_lists_duplicable_instructions_with_decisions() {
    let path = write_temp("explain.scil", KERNEL);
    let out = ipas()
        .arg("explain")
        .arg(&path)
        .args(["--runs", "120"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("protect?"), "{stdout}");
    // At least one instruction is selected and at least one is skipped.
    assert!(stdout.contains("yes"), "{stdout}");
    let lines: Vec<&str> = stdout.lines().skip(1).collect();
    assert!(!lines.is_empty());
}

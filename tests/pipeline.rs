//! Cross-crate integration tests: the full IPAS stack end to end.

use ipas::core::{run_experiment, ExperimentOptions, ProtectionPolicy};
use ipas::faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas::interp::{Machine, RunConfig};
use ipas::workloads::Kind;

/// Every workload's protected variants (full duplication) must behave
/// identically to the original in the absence of faults — same outputs,
/// same golden verification — and pass the IR verifier.
#[test]
fn protection_preserves_semantics_on_all_workloads() {
    for kind in Kind::ALL {
        let w = kind.build(kind.base_input()).unwrap();
        let (protected, stats) = ProtectionPolicy::FullDuplication.apply(&w.module);
        ipas::ir::verify::verify_module(&protected)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert!(stats.duplicated > 0, "{}", kind.name());

        let config = RunConfig {
            entry: w.entry.clone(),
            args: w.args.clone(),
            ..RunConfig::default()
        };
        let base = Machine::new(&w.module).run(&config).unwrap();
        let prot = Machine::new(&protected).run(&config).unwrap();
        assert_eq!(base.outputs, prot.outputs, "{}", kind.name());
        assert!(
            prot.dynamic_insts > base.dynamic_insts,
            "{}: duplication must cost instructions",
            kind.name()
        );
        // The protected clean run still satisfies the verifier.
        assert!(w.verifier.verify(&prot), "{}", kind.name());
    }
}

/// Full duplication detects the large majority of otherwise-SOC faults
/// on the IS workload (the paper's Figure 5 full-duplication bars).
#[test]
fn full_duplication_detects_most_soc() {
    let w = Kind::Is.build(512).unwrap();
    let eval = CampaignConfig {
        runs: 96,
        seed: 5,
        threads: 0,
        ..CampaignConfig::default()
    };
    let unprot = run_campaign(&w, &eval).expect("campaign completes");
    let (protected, _) = ProtectionPolicy::FullDuplication.apply(&w.module);
    let wp = w.with_module("IS-full", protected).unwrap();
    let prot = run_campaign(&wp, &eval).expect("campaign completes");
    assert!(
        unprot.count(Outcome::Soc) > 0,
        "unprotected IS must show SOC"
    );
    assert!(
        prot.fraction(Outcome::Soc) < unprot.fraction(Outcome::Soc) / 2.0,
        "full duplication must cut SOC at least in half: {} vs {}",
        prot.fraction(Outcome::Soc),
        unprot.fraction(Outcome::Soc)
    );
    assert!(prot.count(Outcome::Detected) > 0);
}

/// A small end-to-end experiment on IS: IPAS must cost less than full
/// duplication while reducing SOC.
#[test]
fn ipas_costs_less_than_full_duplication() {
    let w = Kind::Is.build(512).unwrap();
    let result = run_experiment(&w, &ExperimentOptions::quick()).unwrap();
    for v in &result.ipas {
        assert!(v.slowdown < result.full.slowdown);
    }
    let best = &result.ipas[result.best_ipas().unwrap()];
    assert!(
        best.soc_reduction_pct > 30.0,
        "best IPAS config should remove a substantial share of SOC: {:?}",
        result
            .ipas
            .iter()
            .map(|v| (v.slowdown, v.soc_reduction_pct))
            .collect::<Vec<_>>()
    );
}

/// The facade crate re-exports a coherent API across all layers.
#[test]
fn facade_exposes_all_layers() {
    let module = ipas::lang::compile("fn main() -> int { return 2 + 2; }").unwrap();
    let extractor = ipas::analysis::FeatureExtractor::new(&module);
    let (fid, f) = module.functions().next().unwrap();
    let first = f.block(f.entry()).insts()[0];
    let _fv = extractor.extract(fid, first);
    let out = ipas::interp::Machine::new(&module)
        .run(&ipas::interp::RunConfig::default())
        .unwrap();
    assert!(out.status.is_completed());
}

/// Campaign determinism holds through the whole stack: identical seeds
/// give identical experiment outcomes.
#[test]
fn experiments_are_reproducible() {
    let w1 = Kind::Is.build(512).unwrap();
    let w2 = Kind::Is.build(512).unwrap();
    let opts = ExperimentOptions {
        training_runs: 150,
        eval_runs: 48,
        top_n: 1,
        grid: ipas::svm::GridOptions::quick(),
        seed: 99,
        threads: 0,
        journal_dir: None,
        store_dir: None,
        ..ExperimentOptions::default()
    };
    let r1 = run_experiment(&w1, &opts).unwrap();
    let r2 = run_experiment(&w2, &opts).unwrap();
    assert_eq!(r1.unprotected.soc_pct, r2.unprotected.soc_pct);
    assert_eq!(r1.ipas[0].slowdown, r2.ipas[0].slowdown);
    assert_eq!(r1.ipas[0].soc_pct, r2.ipas[0].soc_pct);
}

/// Duplication's checks catch faults far closer to their occurrence
/// than end-of-run verification would (§2.2's motivation). Uses HPCCG,
/// whose verification happens after the solve: on codes that emit most
/// output in a tail loop (IS), SOC faults cluster near the end and the
/// gap narrows by construction.
#[test]
fn duplication_detects_close_to_occurrence() {
    let w = Kind::Hpccg.build(4).unwrap();
    let eval = CampaignConfig {
        runs: 128,
        seed: 77,
        threads: 0,
        ..CampaignConfig::default()
    };
    let unprot = run_campaign(&w, &eval).expect("campaign completes");
    let (protected, _) = ProtectionPolicy::FullDuplication.apply(&w.module);
    let wp = w.with_module("HPCCG-full", protected).unwrap();
    let prot = run_campaign(&wp, &eval).expect("campaign completes");

    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        if v.is_empty() {
            0
        } else {
            v[v.len() / 2]
        }
    };
    let dup_latency = median(
        prot.records
            .iter()
            .filter(|r| r.outcome == Outcome::Detected)
            .map(|r| r.latency)
            .collect(),
    );
    let verify_latency = median(
        unprot
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Soc)
            .map(|r| r.latency)
            .collect(),
    );
    assert!(dup_latency > 0 && verify_latency > 0);
    assert!(
        dup_latency * 10 < verify_latency,
        "checks should fire much earlier than verification: {dup_latency} vs {verify_latency}"
    );
}

//! Property-based pass-correctness tests: optimization and duplication
//! must preserve program behaviour.

use proptest::prelude::*;

use ipas::interp::{Machine, RtVal, RunConfig};

/// A small random program template: a loop accumulating a mix of
/// integer and float arithmetic over an array, parameterized by
/// generated constants. Covers loads/stores, GEPs, casts, calls,
/// branches, and both arithmetic domains.
fn program(a: i64, b: i64, c: i64, scale: i64, n: u8) -> String {
    let n = (n % 24) + 2;
    format!(
        r#"
fn mix(v: float, k: int) -> float {{
    if (k % 3 == 0) {{ return v * 1.5 + 0.25; }}
    else if (k % 3 == 1) {{ return sqrt(fabs(v) + 1.0); }}
    return v - itof(k) * 0.125;
}}
fn main(x: int) -> int {{
    let n: int = {n};
    let arr: [float] = new_float(n);
    let acc: int = x;
    for (let i: int = 0; i < n; i = i + 1) {{
        arr[i] = itof(i * {a} + {b}) * 0.5;
    }}
    let facc: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) {{
        facc = facc + mix(arr[i], i + {c});
        if (i % 2 == 0) {{
            acc = acc + ftoi(facc) % 97;
        }} else {{
            acc = acc - i * {scale};
        }}
    }}
    output_i(acc);
    output_f(facc);
    free_arr(arr);
    return acc;
}}
"#
    )
}

fn run(module: &ipas::ir::Module, x: i64) -> (Vec<i64>, Vec<f64>, ipas::interp::RunStatus) {
    let out = Machine::new(module)
        .run(&RunConfig {
            args: vec![RtVal::I64(x)],
            ..RunConfig::default()
        })
        .expect("program runs");
    (out.outputs.as_ints(), out.outputs.as_floats(), out.status)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// mem2reg + constant folding + DCE preserve observable behaviour.
    #[test]
    fn optimization_preserves_behaviour(
        a in -20i64..20, b in -20i64..20, c in 0i64..10, scale in -5i64..5, n in any::<u8>(), x in -50i64..50
    ) {
        let src = program(a, b, c, scale, n);
        let unopt = ipas::lang::compile_unoptimized(&src, "t").map_err(|e| TestCaseError::fail(e.to_string()))?;
        let opt = ipas::lang::compile(&src).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (i1, f1, s1) = run(&unopt, x);
        let (i2, f2, s2) = run(&opt, x);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(i1, i2);
        prop_assert_eq!(f1, f2);
    }

    /// Duplicating any subset of instructions preserves fault-free
    /// behaviour (the clone pipeline is a semantic no-op without
    /// injections).
    #[test]
    fn duplication_preserves_behaviour(
        a in -20i64..20, b in -20i64..20, c in 0i64..10, scale in -5i64..5, n in any::<u8>(),
        x in -50i64..50, mask in any::<u64>()
    ) {
        let src = program(a, b, c, scale, n);
        let module = ipas::lang::compile(&src).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut counter = 0u32;
        let (protected, stats) = ipas::core::protect_module(&module, &mut |_, _, _| {
            counter += 1;
            (mask >> (counter % 64)) & 1 == 1
        });
        ipas::ir::verify::verify_module(&protected).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (i1, f1, s1) = run(&module, x);
        let (i2, f2, s2) = run(&protected, x);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(i1, i2);
        prop_assert_eq!(f1, f2);
        prop_assert!(stats.duplicated <= stats.considered);
    }
}

//! Property-based differential testing of the frontend + interpreter:
//! random arithmetic expressions are compiled through the full pipeline
//! (parse → check → lower → mem2reg → constfold → DCE → interpret) and
//! compared against a direct AST evaluator.

use proptest::prelude::*;

use ipas::interp::{Machine, RtVal, RunConfig, RunStatus, Trap};

/// A miniature expression AST with its own reference evaluator.
#[derive(Clone, Debug)]
enum E {
    Lit(i64),
    Var, // the single variable `x`
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    IfLt(Box<E>, Box<E>, Box<E>, Box<E>), // if a < b { c } else { d }
}

#[derive(Debug, PartialEq)]
enum Eval {
    Val(i64),
    DivByZero,
}

impl E {
    fn eval(&self, x: i64) -> Eval {
        use Eval::*;
        macro_rules! bin {
            ($a:expr, $b:expr, $f:expr) => {{
                let (Val(a), Val(b)) = (
                    match $a.eval(x) {
                        Val(v) => Val(v),
                        e => return e,
                    },
                    match $b.eval(x) {
                        Val(v) => Val(v),
                        e => return e,
                    },
                ) else {
                    unreachable!()
                };
                #[allow(clippy::redundant_closure_call)]
                $f(a, b)
            }};
        }
        match self {
            E::Lit(v) => Val(*v),
            E::Var => Val(x),
            E::Add(a, b) => bin!(a, b, |a: i64, b: i64| Val(a.wrapping_add(b))),
            E::Sub(a, b) => bin!(a, b, |a: i64, b: i64| Val(a.wrapping_sub(b))),
            E::Mul(a, b) => bin!(a, b, |a: i64, b: i64| Val(a.wrapping_mul(b))),
            E::Div(a, b) => bin!(a, b, |a: i64, b: i64| {
                if b == 0 || (a == i64::MIN && b == -1) {
                    DivByZero
                } else {
                    Val(a / b)
                }
            }),
            E::Rem(a, b) => bin!(a, b, |a: i64, b: i64| {
                if b == 0 || (a == i64::MIN && b == -1) {
                    DivByZero
                } else {
                    Val(a % b)
                }
            }),
            E::Neg(a) => match a.eval(x) {
                Val(v) => Val(0i64.wrapping_sub(v)),
                e => e,
            },
            // `iflt` is a function call in SciL, so all four arguments
            // are evaluated eagerly (and may trap) before selection.
            E::IfLt(a, b, c, d) => {
                let av = match a.eval(x) {
                    Val(v) => v,
                    e => return e,
                };
                let bv = match b.eval(x) {
                    Val(v) => v,
                    e => return e,
                };
                let cv = match c.eval(x) {
                    Val(v) => v,
                    e => return e,
                };
                let dv = match d.eval(x) {
                    Val(v) => v,
                    e => return e,
                };
                if av < bv {
                    Val(cv)
                } else {
                    Val(dv)
                }
            }
        }
    }

    fn to_scil(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v == i64::MIN {
                    // The magnitude is not a valid literal; build it.
                    format!("((0 - {}) - 1)", i64::MAX)
                } else if *v < 0 {
                    format!("(0 - {})", v.unsigned_abs())
                } else {
                    v.to_string()
                }
            }
            E::Var => "x".to_string(),
            E::Add(a, b) => format!("({} + {})", a.to_scil(), b.to_scil()),
            E::Sub(a, b) => format!("({} - {})", a.to_scil(), b.to_scil()),
            E::Mul(a, b) => format!("({} * {})", a.to_scil(), b.to_scil()),
            E::Div(a, b) => format!("({} / {})", a.to_scil(), b.to_scil()),
            E::Rem(a, b) => format!("({} % {})", a.to_scil(), b.to_scil()),
            E::Neg(a) => format!("(-{})", a.to_scil()),
            E::IfLt(a, b, c, d) => format!(
                "iflt({}, {}, {}, {})",
                a.to_scil(),
                b.to_scil(),
                c.to_scil(),
                d.to_scil()
            ),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(E::Lit),
        Just(E::Var),
        Just(E::Lit(i64::MAX)),
        Just(E::Lit(i64::MIN)),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(a, b, c, d)| E::IfLt(
                a.into(),
                b.into(),
                c.into(),
                d.into()
            )),
        ]
    })
}

fn compile_and_run(expr: &E, x: i64) -> Result<Eval, String> {
    // `iflt` as a helper keeps control flow in the generated program.
    let src = format!(
        r#"
fn iflt(a: int, b: int, c: int, d: int) -> int {{
    if (a < b) {{ return c; }}
    return d;
}}
fn main(x: int) -> int {{
    return {};
}}
"#,
        expr.to_scil()
    );
    let module = ipas::lang::compile(&src).map_err(|e| format!("compile: {e}\n{src}"))?;
    let out = Machine::new(&module)
        .run(&RunConfig {
            args: vec![RtVal::I64(x)],
            ..RunConfig::default()
        })
        .map_err(|e| format!("run: {e}"))?;
    match out.status {
        RunStatus::Completed(Some(RtVal::I64(v))) => Ok(Eval::Val(v)),
        RunStatus::Trapped(Trap::DivByZero) | RunStatus::Trapped(Trap::DivOverflow) => {
            Ok(Eval::DivByZero)
        }
        other => Err(format!("unexpected status {other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The compiled pipeline agrees with the reference evaluator on
    /// every expression — including wrapping arithmetic and division
    /// traps. Note: the reference evaluates strictly left-to-right like
    /// the lowered code, so trap ordering agrees by construction; the
    /// one divergence allowed is constant folding refusing to fold
    /// division (which cannot change the result, only *whether* a trap
    /// occurs at compile time — it never does).
    #[test]
    fn compiled_expressions_match_reference(expr in expr_strategy(), x in -100i64..100) {
        let reference = expr.eval(x);
        let compiled = compile_and_run(&expr, x).map_err(TestCaseError::fail)?;
        prop_assert_eq!(compiled, reference);
    }

    /// Every generated program, compiled and optimized, still passes the
    /// IR verifier and prints/parses to a stable normal form.
    #[test]
    fn generated_programs_verify_and_round_trip(expr in expr_strategy()) {
        let src = format!(
            "fn iflt(a: int, b: int, c: int, d: int) -> int {{ if (a < b) {{ return c; }} return d; }}\nfn main(x: int) -> int {{ return {}; }}",
            E::Add(Box::new(expr), Box::new(E::Var)).to_scil()
        );
        let module = ipas::lang::compile(&src).map_err(|e| TestCaseError::fail(e.to_string()))?;
        ipas::ir::verify::verify_module(&module)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let normalized = ipas::ir::parser::parse_module(&module.to_text())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let again = ipas::ir::parser::parse_module(&normalized.to_text())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(normalized.to_text(), again.to_text());
    }
}

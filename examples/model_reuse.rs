//! Model reuse through the content-addressed artifact store.
//!
//! Trains an IPAS classifier once, exports it as a `trained-model`
//! artifact, registers it under a human-readable name, and then — as a
//! separate consumer would — looks the model up by name, imports it,
//! and protects a module without re-running the campaign or the SMO
//! solver. See `docs/artifact-store.md` for the on-disk format.
//!
//! Run with: `cargo run --release --example model_reuse`

use ipas::core::{train_top_configs, LabelKind, ProtectionPolicy, TrainedClassifier};
use ipas::faultsim::{run_campaign, CampaignConfig, Workload};
use ipas::store::{ArtifactKind, Key, Store, TrainedModel};
use ipas::svm::GridOptions;

const KERNEL: &str = r#"
fn main() -> int {
    let n: int = 48;
    let a: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) { a[i] = itof(i) * 0.25 + 1.0; }
    let acc: float = 0.0;
    for (let step: int = 0; step < 4; step = step + 1) {
        for (let i: int = 0; i < n; i = i + 1) {
            acc = acc + a[i] * a[i];
            a[i] = a[i] + 0.01;
        }
    }
    output_f(acc);
    free_arr(a);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("ipas-model-reuse-{}", std::process::id()));
    let store = Store::open(&dir)?;

    // --- Producer: train and publish a model. ---------------------------
    let module = ipas::lang::compile(KERNEL)?;
    let workload = Workload::serial("reuse", module, 1e-9)?;
    let config = CampaignConfig {
        runs: 300,
        seed: 11,
        threads: 0,
        ..CampaignConfig::default()
    };
    let campaign = run_campaign(&workload, &config)?;
    let set = ipas::core::training_set_artifact(&workload, &campaign);
    let data = ipas::core::dataset_from_artifact(&set, LabelKind::SocGenerating);
    let models = train_top_configs(&data, &GridOptions::quick(), 1);
    let best = models.into_iter().next().ok_or("no usable SVM config")?;

    // The key is derived from the training inputs, so retraining with
    // identical inputs republishes the same artifact.
    let campaign_fp = ipas::core::campaign_fingerprint(&workload.module, &config);
    let training_fp = ipas::core::training_fingerprint(
        &campaign_fp,
        LabelKind::SocGenerating,
        &GridOptions::quick(),
        1,
    );
    let key = Key::ranked(&training_fp, 0);
    store.put(&key, &best.export())?;
    store.registry().register(
        "reuse-soc",
        ArtifactKind::TrainedModel,
        &key,
        "example model",
    )?;
    println!("published model {} as 'reuse-soc'", key.short());

    // --- Consumer: look the model up by name and protect. ---------------
    let entry = store
        .registry()
        .lookup("reuse-soc")?
        .ok_or("model not registered")?;
    let model: TrainedModel = store
        .get(&entry.key)?
        .ok_or("registered model missing from store")?;
    let classifier = TrainedClassifier::from_export(&model)?;
    println!(
        "imported model: C={}, gamma={}, F-score {:.3}",
        model.c, model.gamma, model.f_score
    );

    let (protected, stats) = ProtectionPolicy::Ipas(classifier).apply(&workload.module);
    println!(
        "protected module: {} of {} eligible instructions duplicated, {} checks",
        stats.duplicated, stats.considered, stats.checks
    );
    let _ = protected;

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

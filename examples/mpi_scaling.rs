//! Running a protected application across MPI ranks.
//!
//! Protects the CoMD workload with full duplication, runs it as an SPMD
//! job at increasing rank counts under the simulated MPI runtime, and
//! shows (a) strong scaling of the critical path and (b) the flat
//! protection slowdown of Figure 8. Also demonstrates the paper's abort
//! semantics: a fault detected on one rank takes the whole job down.
//!
//! Run with: `cargo run --release --example mpi_scaling`

use ipas::interp::{Injection, RtVal, RunConfig};
use ipas::mpisim::run_mpi_job;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ipas::workloads::comd(3)?;
    let (protected, stats) = ipas::core::ProtectionPolicy::FullDuplication.apply(&workload.module);
    println!(
        "CoMD with {} duplicated instructions and {} checks",
        stats.duplicated, stats.checks
    );

    let config = RunConfig {
        entry: "main".into(),
        args: vec![RtVal::I64(3)],
        ..RunConfig::default()
    };

    println!(
        "\n{:<6} {:>16} {:>16} {:>9}",
        "ranks", "base crit. path", "prot. crit. path", "slowdown"
    );
    for ranks in [1, 2, 4, 8] {
        let base = run_mpi_job(&workload.module, ranks, &config, None)?;
        let prot = run_mpi_job(&protected, ranks, &config, None)?;
        assert!(base.status.is_completed() && prot.status.is_completed());
        println!(
            "{:<6} {:>16} {:>16} {:>8.2}x",
            ranks,
            base.max_rank_insts,
            prot.max_rank_insts,
            prot.max_rank_insts as f64 / base.max_rank_insts as f64
        );
    }

    // Fault on rank 1: with duplication it is detected there, and the
    // whole job aborts — an observable, recoverable symptom.
    let job = run_mpi_job(
        &protected,
        4,
        &RunConfig {
            max_insts: 50_000_000,
            ..config
        },
        Some((1, Injection::at_global_index(2000, 62))),
    )?;
    println!(
        "\ninjected a high-bit fault on rank 1: job status = {:?}",
        job.status
    );
    for (r, out) in job.rank_outputs.iter().enumerate() {
        println!("  rank {r}: {:?}", out.status);
    }
    Ok(())
}

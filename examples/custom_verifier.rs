//! Writing a custom verification routine.
//!
//! IPAS is only as good as the verification routine that labels its
//! training data (step 1 of the workflow). This example protects a
//! Monte-Carlo-style π estimator whose output is *statistical*: exact
//! golden comparison would flag harmless sampling noise as corruption,
//! so we write an `OutputVerifier` that accepts any estimate within a
//! confidence band — the "relaxed methodology" the paper's §7 discusses
//! for outputs without exact solutions.
//!
//! Run with: `cargo run --release --example custom_verifier`

use ipas::faultsim::{run_campaign, CampaignConfig, Outcome, OutputVerifier, Workload};
use ipas::interp::RunOutput;

/// Deterministic quasi-Monte-Carlo π estimator: R2 low-discrepancy
/// points in the unit square, counting hits inside the quarter circle.
const PI_ESTIMATOR: &str = r#"
fn frac(x: float) -> float {
    return x - floor(x);
}
fn main() -> int {
    let n: int = 4000;
    let hits: int = 0;
    for (let i: int = 0; i < n; i = i + 1) {
        // The R2 sequence: x = frac(i/p), y = frac(i/p^2) for the
        // plastic number p — a uniform low-discrepancy point set.
        let x: float = frac(itof(i) * 0.7548776662466927);
        let y: float = frac(itof(i) * 0.5698402909980532);
        if (x * x + y * y < 1.0) { hits = hits + 1; }
    }
    output_f(4.0 * itof(hits) / itof(n));
    return 0;
}
"#;

/// Accepts any single finite estimate within `band` of π.
#[derive(Debug)]
struct PiBandVerifier {
    band: f64,
}

impl OutputVerifier for PiBandVerifier {
    fn verify(&self, run: &RunOutput) -> bool {
        let floats = run.outputs.as_floats();
        let [estimate] = floats.as_slice() else {
            return false; // wrong output shape is always corruption
        };
        estimate.is_finite() && (estimate - std::f64::consts::PI).abs() <= self.band
    }

    fn describe(&self) -> String {
        format!("pi estimate within ±{}", self.band)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = ipas::lang::compile(PI_ESTIMATOR)?;
    let workload = Workload::with_custom_verifier("pi", module, "main", vec![], |_golden| {
        Box::new(PiBandVerifier { band: 0.05 })
    })?;
    println!(
        "golden estimate: {:?} (verifier: {})",
        workload.golden.as_floats(),
        workload.verifier.describe()
    );

    let campaign = run_campaign(
        &workload,
        &CampaignConfig {
            runs: 256,
            seed: 314,
            threads: 0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign completes");
    for outcome in Outcome::ALL {
        println!(
            "{:>9}: {:>5.1}%",
            outcome.label(),
            campaign.fraction(outcome) * 100.0
        );
    }
    println!(
        "\nNote the masking rate: faults that perturb the estimate within the
confidence band are *not* corruption for this workload — a strict golden
comparison would have misclassified them as SOC and overtrained IPAS."
    );
    Ok(())
}

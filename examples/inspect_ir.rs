//! A compiler's-eye tour of the substrate: compile SciL, inspect the
//! SSA IR before and after optimization, extract the paper's 31
//! instruction features, and watch the duplication pass transform a
//! basic block.
//!
//! Run with: `cargo run --release --example inspect_ir`

use ipas::analysis::features::Feature;
use ipas::analysis::FeatureExtractor;
use ipas::core::protect_module;
use ipas::ir::passes;

const SRC: &str = r#"
fn axpy(a: float, x: [float], y: [float], n: int) {
    for (let i: int = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}
fn main() -> int {
    let n: int = 8;
    let x: [float] = new_float(n);
    let y: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) {
        x[i] = itof(i);
        y[i] = 1.0;
    }
    axpy(0.5, x, y, n);
    output_f(y[7]);
    free_arr(x);
    free_arr(y);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Frontend without the optimizer: Clang-style alloca/load/store.
    let raw = ipas::lang::compile_unoptimized(SRC, "axpy")?;
    println!("== unoptimized IR (alloca/load/store form) ==\n{raw}");

    // mem2reg + constant folding + DCE: pruned SSA with phi nodes.
    let mut module = raw.clone();
    passes::optimize_module(&mut module);
    println!("== optimized IR (pruned SSA) ==\n{module}");

    // Round-trip through the textual format. Parsing renumbers values
    // densely, so one parse/print cycle normalizes; after that the text
    // is a fixpoint.
    let normalized = ipas::ir::parser::parse_module(&module.to_text())?;
    let reparsed = ipas::ir::parser::parse_module(&normalized.to_text())?;
    assert_eq!(reparsed.to_text(), normalized.to_text());
    println!("textual IR round-trips exactly\n");

    // Extract Table 1 features for the axpy inner loop.
    let extractor = FeatureExtractor::new(&module);
    let (fid, func) = module
        .functions()
        .find(|(_, f)| f.name() == "axpy")
        .expect("axpy exists");
    println!("== features of axpy's instructions ==");
    for (id, fv) in extractor.extract_all(fid) {
        println!(
            "{id}: {:<6} in_loop={} slice={} dist_ret={}",
            func.inst(id).opcode_name(),
            fv.get(Feature::InLoop) as i64,
            fv.get(Feature::SliceTotal) as i64,
            fv.get(Feature::DistanceToReturn) as i64,
        );
    }

    // Duplicate everything in axpy and show the transformed block.
    let (protected, stats) = protect_module(&module, &mut |f, _, _| f == fid);
    println!(
        "\n== after duplication ({} duplicated, {} checks) ==",
        stats.duplicated, stats.checks
    );
    let pfunc = protected.function(fid);
    print!(
        "{}",
        ipas::ir::printer::print_function(pfunc, Some(&protected))
    );

    // The protected module still computes the same answer.
    let base = ipas::interp::Machine::new(&module).run(&ipas::interp::RunConfig::default())?;
    let prot = ipas::interp::Machine::new(&protected).run(&ipas::interp::RunConfig::default())?;
    assert_eq!(base.outputs, prot.outputs);
    println!(
        "\nsame output, {} -> {} dynamic instructions ({:.2}x)",
        base.dynamic_insts,
        prot.dynamic_insts,
        prot.dynamic_insts as f64 / base.dynamic_insts as f64
    );
    Ok(())
}

//! Quickstart: the complete IPAS workflow on a small kernel.
//!
//! Compiles a SciL kernel, runs a statistical fault-injection campaign
//! to label SOC-generating instructions, trains the SVM classifier,
//! protects the kernel by selective duplication, and shows the outcome
//! breakdown before and after.
//!
//! Run with: `cargo run --release --example quickstart`

use ipas::core::{run_experiment, ExperimentOptions};
use ipas::faultsim::{GoldenToleranceVerifier, Outcome, Workload};

const KERNEL: &str = r#"
// A dense dot-product-with-update kernel: the kind of inner loop IPAS
// protects inside a larger application.
fn main() -> int {
    let n: int = 64;
    let a: [float] = new_float(n);
    let b: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) {
        a[i] = itof(i) * 0.5 + 1.0;
        b[i] = 2.0 - itof(i) * 0.01;
    }
    let acc: float = 0.0;
    for (let step: int = 0; step < 5; step = step + 1) {
        for (let i: int = 0; i < n; i = i + 1) {
            acc = acc + a[i] * b[i];
            a[i] = a[i] + 0.001 * b[i];
        }
    }
    output_f(acc);
    free_arr(a);
    free_arr(b);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: compile SciL to SSA IR (the paper's Clang -> LLVM stage).
    let module = ipas::lang::compile(KERNEL)?;
    println!(
        "compiled kernel: {} static instructions",
        module.num_static_insts()
    );

    // Step 1: the verification routine — here a golden-output comparison
    // with a small float tolerance.
    let workload = Workload::serial("quickstart", module, 1e-9)?;
    println!(
        "golden run: {} dynamic instructions, result {:?}",
        workload.nominal_insts,
        workload.golden.as_floats()
    );

    // Steps 2-4 plus the evaluation protocol, at a small scale.
    let opts = ExperimentOptions {
        training_runs: 300,
        eval_runs: 128,
        top_n: 3,
        grid: ipas::svm::GridOptions::quick(),
        seed: 7,
        threads: 0,
        journal_dir: std::env::var_os("IPAS_JOURNAL_DIR").map(std::path::PathBuf::from),
        store_dir: std::env::var_os(ipas::store::STORE_DIR_ENV).map(std::path::PathBuf::from),
        ..ExperimentOptions::default()
    };
    let result = run_experiment(&workload, &opts)?;

    println!(
        "\ntraining set: {:.1}% SOC-generating samples",
        result.training_soc_fraction * 100.0
    );
    println!(
        "\n{:<12} {:>9} {:>9} {:>9} {:>7} {:>9}",
        "variant", "symptom", "detected", "masked", "SOC", "slowdown"
    );
    let show = |v: &ipas::core::VariantResult| {
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>6.1}% {:>8.2}x",
            v.name,
            v.fraction(Outcome::Symptom) * 100.0,
            v.fraction(Outcome::Detected) * 100.0,
            v.fraction(Outcome::Masked) * 100.0,
            v.fraction(Outcome::Soc) * 100.0,
            v.slowdown
        );
    };
    show(&result.unprotected);
    show(&result.full);
    for v in &result.ipas {
        show(v);
    }

    let best = result.best_ipas().expect("top-N IPAS configs exist");
    let v = &result.ipas[best];
    println!(
        "\nideal-point best IPAS config: {} -> {:.1}% SOC reduction at {:.2}x slowdown",
        v.name, v.soc_reduction_pct, v.slowdown
    );
    let _ = GoldenToleranceVerifier::EXACT; // re-exported marker, see docs
    Ok(())
}

//! Protecting a real solver: IPAS on the HPCCG conjugate-gradient
//! mini-app, compared against SWIFT-style full duplication.
//!
//! This is the scenario from the paper's introduction: a scientific code
//! whose output can be verified (the CG error against a known exact
//! solution), where blanket duplication is too expensive and IPAS learns
//! which instructions actually endanger the result.
//!
//! Run with: `cargo run --release --example protect_hpccg`

use ipas::core::{
    build_training_set, protect_module, train_top_configs, LabelKind, ProtectionPolicy,
};
use ipas::faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas::svm::GridOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ipas::workloads::hpccg(5)?;
    println!(
        "HPCCG 5x5x5: {} static insts, {} dynamic insts, converged to {:.2e} in {} iterations",
        workload.module.num_static_insts(),
        workload.nominal_insts,
        workload.golden.as_floats()[0],
        workload.golden.as_ints()[0],
    );

    // Label SOC-generating instructions by fault injection.
    let training = run_campaign(
        &workload,
        &CampaignConfig {
            runs: 400,
            seed: 42,
            threads: 0,
            ..CampaignConfig::default()
        },
    )?;
    let data = build_training_set(&workload, &training.records, LabelKind::SocGenerating);
    println!(
        "training campaign: {} runs, {:.1}% SOC",
        data.len(),
        data.positive_fraction() * 100.0
    );

    // Train and keep the best configuration by cross-validated F-score.
    let model = train_top_configs(&data, &GridOptions::quick(), 1)
        .into_iter()
        .next()
        .expect("grid search returns configurations");
    println!(
        "best SVM config: C={:.1}, gamma={:.4}, F-score={:.3}",
        model.score().params.c,
        model.score().params.gamma,
        model.score().f_score
    );

    // Protect with IPAS and with full duplication; compare.
    let eval = CampaignConfig {
        runs: 256,
        seed: 1042,
        threads: 0,
        ..CampaignConfig::default()
    };
    let unprot = run_campaign(&workload, &eval)?;

    let (ipas_module, ipas_stats) = ProtectionPolicy::Ipas(model).apply(&workload.module);
    let ipas_wl = workload.with_module("HPCCG+IPAS", ipas_module)?;
    let ipas_run = run_campaign(&ipas_wl, &eval)?;

    let (full_module, full_stats) = protect_module(&workload.module, &mut |_, _, _| true);
    let full_wl = workload.with_module("HPCCG+full", full_module)?;
    let full_run = run_campaign(&full_wl, &eval)?;

    println!(
        "\n{:<12} {:>11} {:>9} {:>9}",
        "variant", "duplicated", "SOC", "slowdown"
    );
    println!(
        "{:<12} {:>11} {:>8.1}% {:>8.2}x",
        "unprotected",
        "0",
        unprot.fraction(Outcome::Soc) * 100.0,
        1.0
    );
    println!(
        "{:<12} {:>11} {:>8.1}% {:>8.2}x",
        "IPAS",
        format!("{:.0}%", ipas_stats.duplicated_fraction() * 100.0),
        ipas_run.fraction(Outcome::Soc) * 100.0,
        ipas_wl.nominal_insts as f64 / workload.nominal_insts as f64
    );
    println!(
        "{:<12} {:>11} {:>8.1}% {:>8.2}x",
        "full",
        format!("{:.0}%", full_stats.duplicated_fraction() * 100.0),
        full_run.fraction(Outcome::Soc) * 100.0,
        full_wl.nominal_insts as f64 / workload.nominal_insts as f64
    );
    println!(
        "\nIPAS protected {} of {} duplicable instructions and inserted {} checks.",
        ipas_stats.duplicated, ipas_stats.considered, ipas_stats.checks
    );
    Ok(())
}
